//! A minimal hand-rolled Rust lexer.
//!
//! The rule engine only needs a token stream that is *sound* about
//! what is code and what is not: identifiers, punctuation, and — the
//! part a regex grep always gets wrong — string literals, character
//! literals, lifetimes, and (nested) comments. Everything the rules
//! match on is an identifier or punctuation token, so a `HashMap`
//! inside a string literal or a doc-comment example can never produce
//! a finding.
//!
//! The lexer is lossless enough for diagnostics: every token carries
//! its 1-based line and (byte) column.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `as`, `fn`, `r#raw` idents).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Numeric literal (suffixes included; `1.5` lexes as three
    /// tokens, which is irrelevant to every rule).
    Number,
    /// String literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Any other single character of punctuation.
    Punct,
}

/// One token: kind, source text, and 1-based position of its first
/// byte.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The exact source slice.
    pub text: &'a str,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
    /// 1-based line of the last byte (differs for multi-line
    /// comments and raw strings).
    pub end_line: u32,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.i + off).copied()
    }

    fn bump(&mut self) {
        if self.bytes.get(self.i) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed).
    fn string_body(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body starting at `r`'s hashes: counts
    /// `#`s, expects `"`, then scans for `"` followed by that many
    /// `#`s. Returns false if this is not a raw string after all
    /// (e.g. `r#ident`).
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek_at(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek_at(hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(hashes + 1);
        loop {
            match self.peek() {
                None => return true,
                Some(b'"') => {
                    self.bump();
                    let mut n = 0usize;
                    while n < hashes && self.peek() == Some(b'#') {
                        self.bump();
                        n += 1;
                    }
                    if n == hashes {
                        return true;
                    }
                }
                Some(_) => self.bump(),
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// Lexes `src` into tokens. Never fails: unrecognized bytes become
/// single-character [`TokKind::Punct`] tokens, and unterminated
/// literals extend to end of input.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek() {
        if c.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (start, line, col) = (lx.i, lx.line, lx.col);
        let kind = match c {
            b'/' if lx.peek_at(1) == Some(b'/') => {
                while lx.peek().is_some_and(|c| c != b'\n') {
                    lx.bump();
                }
                TokKind::LineComment
            }
            b'/' if lx.peek_at(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(), lx.peek_at(1)) {
                        (None, _) => break,
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        _ => lx.bump(),
                    }
                }
                TokKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.string_body();
                TokKind::Str
            }
            b'r' if matches!(lx.peek_at(1), Some(b'"' | b'#')) => {
                lx.bump();
                if lx.raw_string() {
                    TokKind::Str
                } else {
                    // `r#ident` raw identifier: consume `#` + ident.
                    lx.bump();
                    while lx.peek().is_some_and(is_ident_continue) {
                        lx.bump();
                    }
                    TokKind::Ident
                }
            }
            b'b' if lx.peek_at(1) == Some(b'"') => {
                lx.bump_n(2);
                lx.string_body();
                TokKind::Str
            }
            b'b' if lx.peek_at(1) == Some(b'r') && matches!(lx.peek_at(2), Some(b'"' | b'#')) => {
                lx.bump_n(2);
                lx.raw_string();
                TokKind::Str
            }
            b'b' if lx.peek_at(1) == Some(b'\'') => {
                lx.bump_n(2);
                char_body(&mut lx);
                TokKind::Char
            }
            b'\'' => {
                // Lifetime (`'a` not followed by a closing quote) vs
                // char literal (`'a'`, `'\n'`, `'\u{1F600}'`).
                let second = lx.peek_at(1);
                let third = lx.peek_at(2);
                if second.is_some_and(is_ident_start) && third != Some(b'\'') {
                    lx.bump_n(2);
                    while lx.peek().is_some_and(is_ident_continue) {
                        lx.bump();
                    }
                    TokKind::Lifetime
                } else {
                    lx.bump();
                    char_body(&mut lx);
                    TokKind::Char
                }
            }
            c if is_ident_start(c) => {
                lx.bump();
                while lx.peek().is_some_and(is_ident_continue) {
                    lx.bump();
                }
                TokKind::Ident
            }
            c if c.is_ascii_digit() => {
                lx.bump();
                // Suffixes, hex digits, separators; `.` is left out so
                // `1.5` lexes as Number Punct Number — irrelevant to
                // every rule and ambiguity-free for `0..n` ranges.
                while lx.peek().is_some_and(is_ident_continue) {
                    lx.bump();
                }
                TokKind::Number
            }
            _ => {
                lx.bump();
                TokKind::Punct
            }
        };
        out.push(Tok {
            kind,
            text: &lx.src[start..lx.i],
            line,
            col,
            end_line: if lx.col == 1 {
                lx.line.saturating_sub(1)
            } else {
                lx.line
            },
        });
    }
    out
}

/// Consumes a char-literal body (opening quote already consumed).
fn char_body(lx: &mut Lexer<'_>) {
    while let Some(c) = lx.peek() {
        match c {
            b'\\' => lx.bump_n(2),
            b'\'' => {
                lx.bump();
                return;
            }
            b'\n' => return, // malformed; don't eat the file
            _ => lx.bump(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("use std::collections::HashMap;");
        assert_eq!(t[0], (TokKind::Ident, "use"));
        assert_eq!(t[1], (TokKind::Ident, "std"));
        assert_eq!(t[2], (TokKind::Punct, ":"));
        assert_eq!(t[4], (TokKind::Ident, "collections"));
        assert_eq!(t[7], (TokKind::Ident, "HashMap"));
        assert_eq!(t[8], (TokKind::Punct, ";"));
    }

    #[test]
    fn strings_hide_identifiers() {
        let t = kinds(r#"let s = "HashMap::new()";"#);
        assert!(t
            .iter()
            .all(|&(k, x)| k != TokKind::Ident || x != "HashMap"));
        assert!(t.iter().any(|&(k, _)| k == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let t = kinds(r##"let x = r#"a "quoted" HashMap"#; let r#fn = 1;"##);
        assert!(t
            .iter()
            .any(|&(k, x)| k == TokKind::Str && x.contains("quoted")));
        assert!(t.iter().any(|&(k, x)| k == TokKind::Ident && x == "r#fn"));
        assert!(t
            .iter()
            .all(|&(k, x)| k != TokKind::Ident || x != "HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].0, TokKind::BlockComment);
        assert_eq!(t[2], (TokKind::Ident, "b"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(t.iter().filter(|t| t.0 == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|t| t.0 == TokKind::Char).count(), 2);
    }

    #[test]
    fn byte_literals() {
        let t = kinds(r##"f(b'\n', b"bytes", br#"raw"#)"##);
        assert_eq!(t.iter().filter(|t| t.0 == TokKind::Char).count(), 1);
        assert_eq!(t.iter().filter(|t| t.0 == TokKind::Str).count(), 2);
    }

    #[test]
    fn positions_are_one_based() {
        let t = lex("a\n  bb");
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (2, 3));
    }

    #[test]
    fn multiline_comment_tracks_end_line() {
        let t = lex("/* one\ntwo\nthree */ x");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[0].end_line, 3);
        assert_eq!(t[1].line, 3);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for bad in ["\"open", "r#\"open", "/* open", "'"] {
            let _ = lex(bad);
        }
    }
}
