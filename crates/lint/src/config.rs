//! Lint configuration: which crates are deterministic, where the
//! registry modules live, and which rules are enabled.

/// Scoping decisions for one file, derived from its workspace-relative
/// path by [`LintConfig::classify`].
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate the file belongs to (directory name under `crates/`, or
    /// `pact-repro` for the root `src/`).
    pub crate_name: String,
    /// Subject to the D-rules (simulation/policy/statistics code whose
    /// behavior must be bit-reproducible).
    pub deterministic: bool,
    /// The one module allowed to read `PACT_*` environment variables.
    pub env_registry: bool,
    /// The one module allowed to own randomness primitives.
    pub rng_registry: bool,
    /// Crate allowed to print to the terminal.
    pub print_allowed: bool,
    /// File subject to the `counter-truncation` rule.
    pub truncation_scoped: bool,
    /// The one module allowed to read the host wall clock (the host
    /// self-profiler); `det-wall-clock` is waived here and only here.
    pub wall_clock_sanctioned: bool,
}

/// The configurable rule set: scoping tables plus an enabled-rule
/// filter. [`LintConfig::default`] encodes this workspace's policy;
/// fixture tests construct narrower configs.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose source must be bit-deterministic (D-rules apply).
    pub deterministic_crates: Vec<String>,
    /// Workspace-relative files allowed to read `PACT_*` env vars.
    pub env_registry_files: Vec<String>,
    /// Workspace-relative files allowed to own RNG primitives.
    pub rng_registry_files: Vec<String>,
    /// Crates allowed to use `println!`/`eprintln!`.
    pub print_crates: Vec<String>,
    /// Workspace-relative files under the `counter-truncation` rule
    /// (PMU/CHMU counter arithmetic).
    pub truncation_files: Vec<String>,
    /// Workspace-relative files allowed to read the host wall clock
    /// despite living in a deterministic crate. The host self-profiler
    /// (`pact-obs::hostprof`) is the only sanctioned entry: it times
    /// the simulator itself and never feeds sim-domain output.
    pub wall_clock_files: Vec<String>,
    /// Enabled rule ids; empty means every rule in the catalogue.
    pub enabled_rules: Vec<String>,
    /// Method names that count as the encode side of a snapshot codec
    /// pair (X001). A struct is codec-paired when an impl in its own
    /// file defines one fn from each list.
    pub codec_encode_fns: Vec<String>,
    /// Method names that count as the decode side (X001).
    pub codec_decode_fns: Vec<String>,
    /// Workspace-relative files subject to the `counter-mirror` rule
    /// (X002): the fleet-gated machine hot path.
    pub mirror_files: Vec<String>,
    /// The global→per-tenant counter pairs X002 enforces.
    pub mirror_specs: Vec<MirrorSpec>,
    /// The enum whose dispatch sites X003 audits.
    pub event_enum: String,
    /// Workspace-relative files whose `match`es over [`Self::event_enum`]
    /// must be exhaustive (X003): tracer emit + trace exporters.
    pub event_match_files: Vec<String>,
}

/// One X002 mirroring contract: every `+=` on a field of
/// `mirror_struct` reached through the global path must be matched,
/// in the same fn, by a `+=` on the same field reached through the
/// per-tenant lane.
#[derive(Debug, Clone)]
pub struct MirrorSpec {
    /// Self type whose methods the contract covers (e.g. `Sim`).
    pub owner: String,
    /// Field of `self` holding the global struct (`counters`), or
    /// `None` when the counters live directly on `self` (migration
    /// stats).
    pub global_field: Option<String>,
    /// Field of `self` holding the per-tenant `Vec` mirror.
    pub tenant_field: String,
    /// Struct whose field names define the mirrored counter set,
    /// resolved through the cross-file symbol table.
    pub mirror_struct: String,
}

impl Default for LintConfig {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect();
        Self {
            deterministic_crates: s(&[
                "tiersim",
                "core",
                "baselines",
                "workloads",
                "stats",
                "obs",
                "check",
            ]),
            env_registry_files: s(&["crates/bench/src/env.rs"]),
            rng_registry_files: s(&["crates/stats/src/rng.rs"]),
            print_crates: s(&["bench"]),
            truncation_files: s(&["crates/tiersim/src/pmu.rs", "crates/tiersim/src/chmu.rs"]),
            wall_clock_files: s(&["crates/obs/src/hostprof.rs"]),
            enabled_rules: Vec::new(),
            // The workspace codec naming conventions: `encode_state`/
            // `decode_state` on component types, `save_state`/
            // `restore_state` on policies, and the Sim master codec
            // pair `capture_snapshot`/`decode_payload`.
            codec_encode_fns: s(&["encode_state", "save_state", "capture_snapshot"]),
            codec_decode_fns: s(&["decode_state", "restore_state", "decode_payload"]),
            mirror_files: s(&["crates/tiersim/src/machine.rs"]),
            mirror_specs: vec![
                MirrorSpec {
                    owner: "Sim".to_string(),
                    global_field: Some("counters".to_string()),
                    tenant_field: "tenant_counters".to_string(),
                    mirror_struct: "PmuCounters".to_string(),
                },
                MirrorSpec {
                    owner: "Sim".to_string(),
                    global_field: None,
                    tenant_field: "tenant_stats".to_string(),
                    mirror_struct: "TenantStats".to_string(),
                },
            ],
            event_enum: "EventKind".to_string(),
            event_match_files: s(&["crates/obs/src/tracer.rs", "crates/obs/src/export.rs"]),
        }
    }
}

impl LintConfig {
    /// Whether `id` passes the enabled-rule filter.
    pub fn rule_enabled(&self, id: &str) -> bool {
        self.enabled_rules.is_empty() || self.enabled_rules.iter().any(|r| r == id)
    }

    /// Derives the scoping decisions for a workspace-relative path
    /// (forward slashes, e.g. `crates/tiersim/src/machine.rs`).
    pub fn classify(&self, rel_path: &str) -> FileClass {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("pact-repro")
            .to_string();
        FileClass {
            deterministic: self.deterministic_crates.contains(&crate_name),
            env_registry: self.env_registry_files.iter().any(|f| f == rel_path),
            rng_registry: self.rng_registry_files.iter().any(|f| f == rel_path),
            print_allowed: self.print_crates.contains(&crate_name),
            truncation_scoped: self.truncation_files.iter().any(|f| f == rel_path),
            wall_clock_sanctioned: self.wall_clock_files.iter().any(|f| f == rel_path),
            crate_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_classification() {
        let cfg = LintConfig::default();
        let c = cfg.classify("crates/tiersim/src/machine.rs");
        assert!(c.deterministic && !c.print_allowed && !c.env_registry);
        assert_eq!(c.crate_name, "tiersim");
        let b = cfg.classify("crates/bench/src/env.rs");
        assert!(!b.deterministic && b.print_allowed && b.env_registry);
        let r = cfg.classify("src/lib.rs");
        assert_eq!(r.crate_name, "pact-repro");
        assert!(!r.deterministic);
        let p = cfg.classify("crates/tiersim/src/pmu.rs");
        assert!(p.truncation_scoped);
        let g = cfg.classify("crates/stats/src/rng.rs");
        assert!(g.rng_registry && g.deterministic);
        let w = cfg.classify("crates/obs/src/hostprof.rs");
        assert!(w.wall_clock_sanctioned && w.deterministic);
        assert!(!c.wall_clock_sanctioned, "machine.rs must stay under D002");
    }

    #[test]
    fn rule_filter() {
        let mut cfg = LintConfig::default();
        assert!(cfg.rule_enabled("naked-unwrap"));
        cfg.enabled_rules = vec!["det-rng".into()];
        assert!(cfg.rule_enabled("det-rng"));
        assert!(!cfg.rule_enabled("naked-unwrap"));
    }
}
