//! The rule engine: token-pattern rules, test-code exemption, the
//! `// pact-lint: allow(<rule>) — <reason>` suppression grammar, and
//! the `// Invariant:` annotation convention for `unwrap`/`expect`.
//!
//! Rules are summarized in the [`RULES`] catalogue and documented in
//! detail in `DESIGN.md` §11.

use crate::config::LintConfig;
use crate::lexer::{lex, Tok, TokKind};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case identifier, used in suppressions and `--rule`.
    pub id: &'static str,
    /// Short code (`D…` determinism, `H…` hygiene, `S…` suppression).
    pub code: &'static str,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// Remediation hint appended to each diagnostic.
    pub help: &'static str,
}

/// The rule catalogue. Order is report order.
pub const RULES: [Rule; 11] = [
    Rule {
        id: "det-hash-collections",
        code: "D001",
        summary: "no HashMap/HashSet in deterministic crates (iteration order is nondeterministic)",
        help: "use BTreeMap/BTreeSet or a sorted Vec",
    },
    Rule {
        id: "det-wall-clock",
        code: "D002",
        summary: "no Instant/SystemTime in deterministic crates (wall-clock reads break replay)",
        help: "derive timing from simulation cycles, or measure in pact-bench",
    },
    Rule {
        id: "det-rng",
        code: "D003",
        summary: "no ambient randomness outside stats::rng (thread_rng/OsRng/rand)",
        help: "use pact_stats::SplitMix64 seeded from the experiment seed",
    },
    Rule {
        id: "det-env-read",
        code: "D004",
        summary: "no std::env::var outside the bench::env PACT_* registry",
        help: "read the variable in crates/bench/src/env.rs and pass the value down",
    },
    Rule {
        id: "naked-unwrap",
        code: "H001",
        summary: "no .unwrap()/.expect(\"…\") in non-test code without an `// Invariant:` comment",
        help: "convert to a typed error, or state why it cannot fail in an `// Invariant:` comment",
    },
    Rule {
        id: "counter-truncation",
        code: "H002",
        summary: "no `as` truncation to a narrower integer in PMU/CHMU counter arithmetic",
        help: "widen the arithmetic or use try_into with a handled error",
    },
    Rule {
        id: "stray-print",
        code: "H003",
        summary: "no println!/eprintln! outside the pact-bench crate",
        help: "return data to the caller; only bench binaries talk to a terminal",
    },
    Rule {
        id: "suppression",
        code: "S001",
        summary: "malformed or unknown pact-lint suppression comment",
        help: "write `// pact-lint: allow(<rule-id>) — <reason>` with a known rule and a non-empty reason",
    },
    Rule {
        id: "snapshot-coverage",
        code: "X001",
        summary: "every field of a snapshot-coded struct must round-trip through encode AND decode",
        help: "write the field in the encode path and read it back in decode, or annotate it with `// snapshot: skip — <reason>`",
    },
    Rule {
        id: "counter-mirror",
        code: "X002",
        summary: "every global PMU/migration counter bump must have a per-tenant mirror in the same fn",
        help: "bump the matching tenant_counters/tenant_stats field alongside the global, or justify with `// pact-lint: allow(counter-mirror) — <reason>`",
    },
    Rule {
        id: "event-exhaustiveness",
        code: "X003",
        summary: "EventKind dispatch sites must name every variant; wildcard arms defeat the check",
        help: "add the missing variant arms so a new EventKind fails the lint instead of vanishing from a trace path",
    },
];

/// Looks a rule up by its kebab-case id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn rule(id: &str) -> &'static Rule {
    // Invariant: `rule` is only called with ids from RULES itself.
    rule_by_id(id).expect("rule id is in the catalogue")
}

/// One finding, positioned in a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: &'static Rule,
    /// Workspace-relative path (as given to [`lint_source`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What was found, specifically.
    pub message: String,
}

/// A suppression comment, parsed.
pub(crate) struct Suppression {
    pub(crate) rule_id: String,
    /// Line the suppression applies to (its own line, or the next
    /// code line when the comment stands alone).
    pub(crate) target_line: u32,
    /// Where the comment itself is, for S001 diagnostics.
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) problem: Option<String>,
}

/// Comment-derived facts shared by the token pass and the parse
/// layer: lines fully covered by comments (for annotation and
/// suppression reach-through), lines carrying an `Invariant:`
/// annotation, and all parsed suppressions with their target lines
/// resolved.
pub(crate) struct CommentFacts {
    pub(crate) comment_lines: std::collections::BTreeSet<u32>,
    pub(crate) code_lines: std::collections::BTreeSet<u32>,
    pub(crate) invariant_lines: std::collections::BTreeSet<u32>,
    pub(crate) suppressions: Vec<Suppression>,
}

impl CommentFacts {
    /// Whether `line` holds comments and nothing else.
    pub(crate) fn comment_only(&self, line: u32) -> bool {
        self.comment_lines.contains(&line) && !self.code_lines.contains(&line)
    }

    /// Resolves the line a standalone annotation comment at `line`
    /// applies to: the next line holding code (stacked annotation
    /// comments skip over each other). A trailing comment targets its
    /// own line.
    pub(crate) fn annotation_target(&self, line: u32) -> u32 {
        if !self.comment_only(line) {
            return line;
        }
        let mut l = line + 1;
        while self.comment_only(l) {
            l += 1;
        }
        l
    }
}

/// Collects [`CommentFacts`] from a full token stream.
pub(crate) fn comment_facts(toks: &[Tok<'_>]) -> CommentFacts {
    let mut facts = CommentFacts {
        comment_lines: std::collections::BTreeSet::new(),
        code_lines: std::collections::BTreeSet::new(),
        invariant_lines: std::collections::BTreeSet::new(),
        suppressions: Vec::new(),
    };
    for t in toks {
        let is_comment = matches!(t.kind, TokKind::LineComment | TokKind::BlockComment);
        for line in t.line..=t.end_line.max(t.line) {
            if is_comment {
                facts.comment_lines.insert(line);
            } else {
                facts.code_lines.insert(line);
            }
        }
        if !is_comment {
            continue;
        }
        if t.text.to_ascii_lowercase().contains("invariant:") {
            for line in t.line..=t.end_line.max(t.line) {
                facts.invariant_lines.insert(line);
            }
        }
        if let Some(s) = parse_suppression(t) {
            facts.suppressions.push(s);
        }
    }
    let targets: Vec<u32> = facts
        .suppressions
        .iter()
        .map(|s| facts.annotation_target(s.line))
        .collect();
    for (s, target) in facts.suppressions.iter_mut().zip(targets) {
        s.target_line = target;
    }
    facts
}

/// Lints one file's source text against the configured rules.
/// `rel_path` is the workspace-relative path used for scoping
/// decisions and diagnostics.
pub fn lint_source(rel_path: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    let toks = lex(src);
    lint_tokens(rel_path, &toks, cfg)
}

/// Token-pass body of [`lint_source`], reusable by callers that
/// already hold the token stream (the combined scan lexes once).
pub(crate) fn lint_tokens(rel_path: &str, toks: &[Tok<'_>], cfg: &LintConfig) -> Vec<Diagnostic> {
    let class = cfg.classify(rel_path);
    let facts = comment_facts(toks);
    let suppressions = &facts.suppressions;
    // An unwrap at line L is annotated when L itself, or the block of
    // comment-only lines immediately above it, mentions `Invariant:`.
    let has_invariant = |line: u32| {
        if facts.invariant_lines.contains(&line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && facts.comment_only(l) {
            if facts.invariant_lines.contains(&l) {
                return true;
            }
            l -= 1;
        }
        false
    };

    // --- code view and test regions ---------------------------------
    let code: Vec<&Tok<'_>> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let test_spans = test_regions(&code);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx <= b);

    // --- pattern rules ----------------------------------------------
    let mut found: Vec<Diagnostic> = Vec::new();
    let mut push = |rule_id: &str, t: &Tok<'_>, message: String| {
        found.push(Diagnostic {
            rule: rule(rule_id),
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
        });
    };
    let punct = |i: usize, ch: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
    };
    let enabled = |id: &str| cfg.rule_enabled(id);

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(i) {
            continue;
        }
        match t.text {
            "HashMap" | "HashSet" if class.deterministic && enabled("det-hash-collections") => {
                push(
                    "det-hash-collections",
                    t,
                    format!("`{}` in deterministic crate `{}`", t.text, class.crate_name),
                );
            }
            "Instant" | "SystemTime"
                if class.deterministic
                    && !class.wall_clock_sanctioned
                    && enabled("det-wall-clock") =>
            {
                push(
                    "det-wall-clock",
                    t,
                    format!(
                        "wall-clock type `{}` in deterministic crate `{}`",
                        t.text, class.crate_name
                    ),
                );
            }
            "thread_rng" | "ThreadRng" | "OsRng" | "StdRng" | "from_entropy"
                if class.deterministic && !class.rng_registry && enabled("det-rng") =>
            {
                push(
                    "det-rng",
                    t,
                    format!("ambient randomness `{}` outside stats::rng", t.text),
                );
            }
            "rand"
                if class.deterministic
                    && !class.rng_registry
                    && punct(i + 1, ":")
                    && punct(i + 2, ":")
                    && enabled("det-rng") =>
            {
                push(
                    "det-rng",
                    t,
                    "use of the `rand` crate outside stats::rng".into(),
                );
            }
            "env"
                if !class.env_registry
                    && punct(i + 1, ":")
                    && punct(i + 2, ":")
                    && code.get(i + 3).is_some_and(|n| {
                        n.kind == TokKind::Ident
                            && matches!(
                                n.text,
                                "var" | "var_os" | "vars" | "vars_os" | "set_var" | "remove_var"
                            )
                    })
                    && enabled("det-env-read") =>
            {
                // Invariant-by-construction: get(i + 3) matched above.
                let what = code[i + 3].text;
                push(
                    "det-env-read",
                    t,
                    format!("`env::{what}` outside the bench::env registry"),
                );
            }
            "unwrap"
                if punct(i.wrapping_sub(1), ".")
                    && punct(i + 1, "(")
                    && punct(i + 2, ")")
                    && enabled("naked-unwrap")
                    && !has_invariant(t.line) =>
            {
                push(
                    "naked-unwrap",
                    t,
                    "`.unwrap()` without an `// Invariant:` justification".into(),
                );
            }
            "expect"
                if punct(i.wrapping_sub(1), ".")
                    && punct(i + 1, "(")
                    && code.get(i + 2).is_some_and(|a| a.kind == TokKind::Str)
                    && enabled("naked-unwrap")
                    && !has_invariant(t.line) =>
            {
                push(
                    "naked-unwrap",
                    t,
                    "`.expect(\"…\")` without an `// Invariant:` justification".into(),
                );
            }
            "as" if class.truncation_scoped && enabled("counter-truncation") => {
                if let Some(n) = code.get(i + 1) {
                    if n.kind == TokKind::Ident
                        && matches!(n.text, "u8" | "u16" | "u32" | "i8" | "i16" | "i32")
                    {
                        push(
                            "counter-truncation",
                            n,
                            format!("`as {}` truncation in counter arithmetic", n.text),
                        );
                    }
                }
            }
            "println" | "eprintln" | "print" | "eprint"
                if !class.print_allowed && punct(i + 1, "!") && enabled("stray-print") =>
            {
                push(
                    "stray-print",
                    t,
                    format!("`{}!` outside the bench crate", t.text),
                );
            }
            _ => {}
        }
    }

    // --- suppression application ------------------------------------
    let mut out: Vec<Diagnostic> = Vec::new();
    for s in suppressions {
        if !enabled("suppression") {
            continue;
        }
        if let Some(problem) = &s.problem {
            out.push(Diagnostic {
                rule: rule("suppression"),
                file: rel_path.to_string(),
                line: s.line,
                col: s.col,
                message: problem.clone(),
            });
        }
    }
    for d in found {
        let suppressed = suppressions
            .iter()
            .any(|s| s.problem.is_none() && s.rule_id == d.rule.id && s.target_line == d.line);
        if !suppressed {
            out.push(d);
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule.code).cmp(&(b.line, b.col, b.rule.code)));
    out
}

/// Parses a `pact-lint: allow(<rule>) — <reason>` comment. Returns
/// `None` for comments that do not mention `pact-lint` at all.
pub(crate) fn parse_suppression(t: &Tok<'_>) -> Option<Suppression> {
    // Suppressions are plain `//` line comments; doc comments only
    // ever *describe* the grammar (this crate's own docs included).
    if !t.text.starts_with("//") || t.text.starts_with("///") || t.text.starts_with("//!") {
        return None;
    }
    let pos = t.text.find("pact-lint")?;
    let line = t.line;
    let col = t.col;
    let make = |rule_id: String, problem: Option<String>| Suppression {
        rule_id,
        target_line: line,
        line,
        col,
        problem,
    };
    let rest = t.text[pos + "pact-lint".len()..]
        .trim_start_matches(':')
        .trim_start();
    // Prose that merely mentions the tool name is not a suppression
    // attempt; only the full marker form is parsed.
    let args = rest.strip_prefix("allow")?;
    let args = args.trim_start();
    let inner = args.strip_prefix('(').and_then(|a| a.split_once(')'));
    let Some((rule_id, tail)) = inner else {
        return Some(make(
            String::new(),
            Some("expected `allow(<rule-id>)` after `pact-lint:`".into()),
        ));
    };
    let rule_id = rule_id.trim().to_string();
    if rule_by_id(&rule_id).is_none() || rule_id == "suppression" {
        return Some(make(
            rule_id.clone(),
            Some(format!("unknown rule `{rule_id}` in suppression")),
        ));
    }
    // The reason: anything non-empty after the closing paren, once
    // separator dashes/em-dashes/colons are stripped.
    let reason = tail
        .trim_start()
        .trim_start_matches(['—', '-', ':', '–'])
        .trim();
    if reason.is_empty() {
        return Some(make(
            rule_id,
            Some("suppression is missing its `— <reason>` justification".into()),
        ));
    }
    Some(make(rule_id, None))
}

/// Finds spans (inclusive code-token index ranges) of test-only code:
/// items annotated `#[test]` / `#[cfg(test)]` (and `cfg` attributes
/// naming `test` positively — `not(test)` is production code).
pub(crate) fn test_regions(code: &[&Tok<'_>]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let punct_is = |i: usize, ch: &str| {
        code.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
    };
    let mut i = 0usize;
    while i < code.len() {
        if !punct_is(i, "#") {
            i += 1;
            continue;
        }
        // `#![…]` inner attribute: if it is test-scoped, the whole
        // file is test code.
        let inner = punct_is(i + 1, "!");
        let open = if inner { i + 2 } else { i + 1 };
        if !punct_is(open, "[") {
            i += 1;
            continue;
        }
        let Some(close) = matching(code, open, "[", "]") else {
            break;
        };
        let attr_is_test = {
            let body = &code[open + 1..close];
            let has = |name: &str| {
                body.iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == name)
            };
            has("test") && !has("not")
        };
        if !attr_is_test {
            i = close + 1;
            continue;
        }
        if inner {
            spans.push((0, code.len().saturating_sub(1)));
            return spans;
        }
        // Skip any further (outer) attributes between this one and the
        // item they decorate.
        let mut k = close + 1;
        while punct_is(k, "#") && punct_is(k + 1, "[") {
            match matching(code, k + 1, "[", "]") {
                Some(c) => k = c + 1,
                None => return spans,
            }
        }
        // The item body: first `{ … }` at bracket depth 0, or a `;`
        // for item declarations without a body.
        let mut depth = 0i32;
        let mut end = None;
        while k < code.len() {
            let t = code[k];
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        end = matching(code, k, "{", "}");
                        break;
                    }
                    ";" if depth == 0 => {
                        end = Some(k);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        match end {
            Some(e) => {
                spans.push((i, e));
                i = e + 1;
            }
            None => {
                // Unterminated item: everything that follows is inside.
                spans.push((i, code.len().saturating_sub(1)));
                return spans;
            }
        }
    }
    spans
}

/// Index of the token closing the delimiter opened at `open`.
pub(crate) fn matching(code: &[&Tok<'_>], open: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        if t.text == op {
            depth += 1;
        } else if t.text == cl {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}
