//! The per-file and workspace source models the semantic rules run
//! on: structs with their fields (plus `// snapshot: skip`
//! annotations), enums with their variants, and functions reduced to
//! the facts X001–X003 need — identifier streams, call edges,
//! compound-assignment "bumps", `let` bindings, and `match`
//! expressions with per-arm path references.
//!
//! The model is deliberately *lossy*: it is built by a recursive
//! descent over the lexer's token stream, not a real Rust parser, and
//! it only keeps what the rules consume. DESIGN.md §16 spells out the
//! resulting proof boundary (what the analyzer can and cannot see).

use std::collections::BTreeSet;

/// A `// snapshot: skip — <reason>` annotation attached to a field.
#[derive(Debug, Clone)]
pub(crate) struct SkipAnno {
    /// Whether a non-empty reason followed `skip`.
    pub(crate) reason_ok: bool,
    /// Position of the annotation comment (for S001 diagnostics).
    pub(crate) line: u32,
    pub(crate) col: u32,
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub(crate) struct FieldDef {
    pub(crate) name: String,
    pub(crate) line: u32,
    pub(crate) col: u32,
    /// The skip annotation targeting this field's line, if any.
    pub(crate) skip: Option<SkipAnno>,
}

/// A struct definition (unit/tuple structs keep an empty field list).
#[derive(Debug, Clone)]
pub(crate) struct StructDef {
    pub(crate) name: String,
    pub(crate) fields: Vec<FieldDef>,
}

/// An enum definition and its variant names, in declaration order.
#[derive(Debug, Clone)]
pub(crate) struct EnumDef {
    pub(crate) name: String,
    pub(crate) variants: Vec<String>,
}

/// A compound assignment (`… += …`) with its receiver chain: the
/// dot-separated identifier path with index groups elided, e.g.
/// `self.tenant_stats[t].promotions += 1` ⇒ `[self, tenant_stats,
/// promotions]`.
#[derive(Debug, Clone)]
pub(crate) struct Bump {
    pub(crate) chain: Vec<String>,
    pub(crate) line: u32,
    pub(crate) col: u32,
}

/// A `let` (or `if let` / `while let`) binding: the lowercase
/// identifiers it introduces and the identifiers its initializer
/// mentions. Used to resolve per-tenant aliases such as
/// `let tc = &mut self.tenant_counters[owner]`.
#[derive(Debug, Clone)]
pub(crate) struct LetBind {
    pub(crate) names: Vec<String>,
    pub(crate) rhs: BTreeSet<String>,
}

/// One arm of a `match`: the `A::B` path pairs referenced by its
/// pattern and body, and whether the pattern is a catch-all (`_` or a
/// lone binding identifier).
#[derive(Debug, Clone)]
pub(crate) struct MatchArm {
    /// `(qualifier, name)` pairs from the pattern tokens.
    pub(crate) pattern_paths: Vec<(String, String)>,
    /// `(qualifier, name)` pairs from the body tokens (tag-byte
    /// decoders construct variants in arm bodies, not patterns).
    pub(crate) body_paths: Vec<(String, String)>,
    pub(crate) wildcard: bool,
    pub(crate) line: u32,
    pub(crate) col: u32,
}

/// A `match` expression and its arms.
#[derive(Debug, Clone)]
pub(crate) struct MatchExpr {
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) arms: Vec<MatchArm>,
}

/// How a call names its target, deciding where it resolves.
/// Receiver-aware resolution keeps the X001 identifier closure tight:
/// `ByteWriter::new(…)` must not resolve to `Sim::new` (whose body
/// mentions every field and would saturate coverage).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum CallKind {
    /// `self.f(…)` — resolves to the caller's own impl.
    SelfCall,
    /// `Type::f(…)` — resolves to fns owned by `Type` (or the
    /// caller's impl for `Self::f`).
    Qualified(String),
    /// `f(…)` — resolves to free fns.
    Bare,
}

/// One call site: target name plus how it was named. Methods on
/// sub-objects (`self.field.m(…)`) are not recorded — they resolve
/// to other types and usually other files.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Call {
    pub(crate) kind: CallKind,
    pub(crate) name: String,
}

/// One function, reduced to the facts the semantic rules consume.
#[derive(Debug, Clone)]
pub(crate) struct FnDef {
    pub(crate) name: String,
    /// Self type of the enclosing `impl` block, if any (last path
    /// segment; the type after `for` in trait impls).
    pub(crate) owner: Option<String>,
    /// Every identifier appearing in the body.
    pub(crate) idents: BTreeSet<String>,
    /// Call sites, resolved within the same file by [`CallKind`].
    pub(crate) calls: BTreeSet<Call>,
    pub(crate) bumps: Vec<Bump>,
    pub(crate) lets: Vec<LetBind>,
    pub(crate) matches: Vec<MatchExpr>,
}

/// A parsed suppression usable by the semantic pass: rule id plus the
/// line it targets. Malformed suppressions are reported by S001 in
/// the token pass and never reach this list.
#[derive(Debug, Clone)]
pub(crate) struct SuppressionRef {
    pub(crate) rule_id: String,
    pub(crate) target_line: u32,
}

/// Everything the parse layer extracted from one file.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileModel {
    pub(crate) path: String,
    pub(crate) structs: Vec<StructDef>,
    pub(crate) enums: Vec<EnumDef>,
    pub(crate) fns: Vec<FnDef>,
    pub(crate) suppressions: Vec<SuppressionRef>,
}

/// The cross-file symbol table: every file model, with lookups for
/// struct fields and enum variants by (unqualified) type name.
#[derive(Debug, Default)]
pub(crate) struct WorkspaceModel {
    pub(crate) files: Vec<FileModel>,
}

impl WorkspaceModel {
    /// Field names of the first struct named `name`, searched across
    /// all files in scan order.
    pub(crate) fn struct_fields(&self, name: &str) -> Option<BTreeSet<String>> {
        self.files
            .iter()
            .flat_map(|f| f.structs.iter())
            .find(|s| s.name == name)
            .map(|s| s.fields.iter().map(|f| f.name.clone()).collect())
    }

    /// Variant names of the first enum named `name`.
    pub(crate) fn enum_variants(&self, name: &str) -> Option<&[String]> {
        self.files
            .iter()
            .flat_map(|f| f.enums.iter())
            .find(|e| e.name == name)
            .map(|e| e.variants.as_slice())
    }

    pub(crate) fn file(&self, path: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.path == path)
    }
}

impl FileModel {
    /// Union of body identifiers of `roots` and everything they
    /// transitively call *within this file*, with receiver-aware
    /// resolution: `self.f()` follows the caller's impl, `Type::f()`
    /// follows that type's impl, bare `f()` follows free fns.
    pub(crate) fn ident_closure<'a, I>(&self, roots: I) -> BTreeSet<String>
    where
        I: IntoIterator<Item = &'a FnDef>,
    {
        let mut idents = BTreeSet::new();
        let mut visited: BTreeSet<(String, String)> = BTreeSet::new();
        let mut queue: Vec<&FnDef> = roots.into_iter().collect();
        while let Some(f) = queue.pop() {
            let key = (f.owner.clone().unwrap_or_default(), f.name.clone());
            if !visited.insert(key) {
                continue;
            }
            idents.extend(f.idents.iter().cloned());
            for c in &f.calls {
                let target_owner: Option<&str> = match &c.kind {
                    CallKind::SelfCall => f.owner.as_deref(),
                    CallKind::Qualified(q) if q == "Self" => f.owner.as_deref(),
                    CallKind::Qualified(q) => Some(q.as_str()),
                    CallKind::Bare => None,
                };
                queue.extend(
                    self.fns
                        .iter()
                        .filter(|g| g.name == c.name && g.owner.as_deref() == target_owner),
                );
            }
        }
        idents
    }
}
