//! Recursive-descent model builder: walks the lexer's token stream
//! and extracts the [`FileModel`] the semantic rules (X001–X003)
//! consume. This is not a Rust parser — it recognizes just enough
//! item structure (structs, enums, impl blocks, fns, match arms) to
//! be *sound about position*: a field, bump, or match arm is always
//! attributed to the right line, and string/comment content can never
//! leak into the model because the lexer already classified it.
//!
//! Items inside `#[test]`/`#[cfg(test)]` regions are parsed and
//! discarded, mirroring the token pass's test exemption.

use crate::lexer::{Tok, TokKind};
use crate::model::{
    Bump, Call, CallKind, EnumDef, FieldDef, FileModel, FnDef, LetBind, MatchArm, MatchExpr,
    SkipAnno, StructDef, SuppressionRef,
};
use crate::rules::{comment_facts, matching, test_regions};
use std::collections::BTreeSet;

/// Builds the model for one file from its full token stream.
pub(crate) fn parse_file(rel_path: &str, toks: &[Tok<'_>]) -> FileModel {
    let facts = comment_facts(toks);

    // `// snapshot: skip — <reason>` annotations, resolved to the
    // line they target (own line, or next code line when standalone).
    let mut skips: Vec<(u32, SkipAnno)> = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        if let Some(anno) = parse_skip(t) {
            skips.push((facts.annotation_target(t.line), anno));
        }
    }

    let code: Vec<&Tok<'_>> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let tests = test_regions(&code);

    let mut model = FileModel {
        path: rel_path.to_string(),
        ..FileModel::default()
    };
    model.suppressions = facts
        .suppressions
        .iter()
        .filter(|s| s.problem.is_none())
        .map(|s| SuppressionRef {
            rule_id: s.rule_id.clone(),
            target_line: s.target_line,
        })
        .collect();

    let mut p = Parser {
        code: &code,
        tests,
        skips,
        model: &mut model,
    };
    p.items(0, code.len(), None);
    model
}

/// Parses a `// snapshot: skip — <reason>` annotation comment.
/// Doc comments only describe the grammar and never count.
fn parse_skip(t: &Tok<'_>) -> Option<SkipAnno> {
    if !t.text.starts_with("//") || t.text.starts_with("///") || t.text.starts_with("//!") {
        return None;
    }
    let pos = t.text.find("snapshot:")?;
    let rest = t.text[pos + "snapshot:".len()..].trim_start();
    let tail = rest.strip_prefix("skip")?;
    // "skipped"/"skipping" in prose is not an annotation.
    if tail.chars().next().is_some_and(|c| c.is_alphanumeric()) {
        return None;
    }
    let reason = tail
        .trim_start()
        .trim_start_matches(['—', '-', ':', '–'])
        .trim();
    Some(SkipAnno {
        reason_ok: !reason.is_empty(),
        line: t.line,
        col: t.col,
    })
}

struct Parser<'a, 'b> {
    code: &'a [&'a Tok<'b>],
    tests: Vec<(usize, usize)>,
    skips: Vec<(u32, SkipAnno)>,
    model: &'a mut FileModel,
}

impl Parser<'_, '_> {
    fn in_test(&self, idx: usize) -> bool {
        self.tests.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.code
            .get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
    }

    fn punct_at(&self, i: usize, ch: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
    }

    /// Whether the punct at `i` and the one at `i + 1` are glued
    /// (multi-char operators lex as adjacent single-char puncts).
    fn glued(&self, i: usize) -> bool {
        match (self.code.get(i), self.code.get(i + 1)) {
            (Some(a), Some(b)) => a.line == b.line && b.col == a.col + 1,
            _ => false,
        }
    }

    /// Scans `[lo, hi)` for items; `owner` is the enclosing impl's
    /// self type.
    fn items(&mut self, lo: usize, hi: usize, owner: Option<&str>) {
        let mut i = lo;
        while i < hi {
            let discard = self.in_test(i);
            match self.ident_at(i) {
                Some("struct") if self.ident_at(i + 1).is_some() => {
                    i = self.item_struct(i, hi, discard);
                }
                Some("enum") if self.ident_at(i + 1).is_some() => {
                    i = self.item_enum(i, hi, discard);
                }
                Some("impl") => {
                    i = self.item_impl(i, hi, discard);
                }
                Some("fn") if self.ident_at(i + 1).is_some() => {
                    i = self.item_fn(i, hi, owner, discard);
                }
                Some("mod") if self.ident_at(i + 1).is_some() && self.punct_at(i + 2, "{") => {
                    match matching(self.code, i + 2, "{", "}") {
                        Some(close) => {
                            if !discard {
                                self.items(i + 3, close.min(hi), None);
                            }
                            i = close + 1;
                        }
                        None => i += 1,
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// Finds the next `{`, `(`, or `;` at angle-bracket depth 0 —
    /// the end of a generic item head. `->` arrows do not close
    /// angles.
    fn head_end(&self, mut i: usize, hi: usize) -> Option<usize> {
        let mut angle = 0i32;
        while i < hi {
            let t = self.code[i];
            if t.kind == TokKind::Punct {
                match t.text {
                    "<" => angle += 1,
                    ">" => {
                        let arrow = i > 0 && self.punct_at(i - 1, "-") && self.glued(i - 1);
                        if !arrow {
                            angle = (angle - 1).max(0);
                        }
                    }
                    "{" | "(" | ";" if angle == 0 => return Some(i),
                    _ => {}
                }
            }
            i += 1;
        }
        None
    }

    fn item_struct(&mut self, i: usize, hi: usize, discard: bool) -> usize {
        // Invariant: item_struct is only entered when ident_at(i+1) matched.
        let name = self.ident_at(i + 1).expect("struct name checked by caller");
        let Some(end) = self.head_end(i + 2, hi) else {
            return hi;
        };
        let mut def = StructDef {
            name: name.to_string(),
            fields: Vec::new(),
        };
        let after = match self.code[end].text {
            "{" => {
                let Some(close) = matching(self.code, end, "{", "}") else {
                    return hi;
                };
                self.struct_fields(end + 1, close, &mut def);
                close + 1
            }
            "(" => match matching(self.code, end, "(", ")") {
                // Tuple struct: positional fields are outside X001's
                // model (no codec-paired tuple structs exist).
                Some(close) => close + 1,
                None => hi,
            },
            _ => end + 1, // unit struct `;`
        };
        if !discard {
            self.model.structs.push(def);
        }
        after
    }

    fn struct_fields(&mut self, lo: usize, hi: usize, def: &mut StructDef) {
        let mut k = lo;
        while k < hi {
            // Attributes and visibility before the field name.
            if self.punct_at(k, "#") && self.punct_at(k + 1, "[") {
                match matching(self.code, k + 1, "[", "]") {
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => return,
                }
            }
            if self.ident_at(k) == Some("pub") {
                k += 1;
                if self.punct_at(k, "(") {
                    match matching(self.code, k, "(", ")") {
                        Some(c) => k = c + 1,
                        None => return,
                    }
                }
                continue;
            }
            let (Some(name), true) = (self.ident_at(k), self.punct_at(k + 1, ":")) else {
                k += 1;
                continue;
            };
            let t = self.code[k];
            let skip = self
                .skips
                .iter()
                .find(|(target, _)| *target == t.line)
                .map(|(_, a)| a.clone());
            def.fields.push(FieldDef {
                name: name.to_string(),
                line: t.line,
                col: t.col,
                skip,
            });
            // Skip the type: to the next `,` at depth 0 over every
            // delimiter kind (generics included; `->` guarded).
            let mut depth = 0i32;
            let mut angle = 0i32;
            k += 2;
            while k < hi {
                let t = self.code[k];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "<" => angle += 1,
                        ">" => {
                            let arrow = k > 0 && self.punct_at(k - 1, "-") && self.glued(k - 1);
                            if !arrow {
                                angle = (angle - 1).max(0);
                            }
                        }
                        "," if depth == 0 && angle == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
        }
    }

    fn item_enum(&mut self, i: usize, hi: usize, discard: bool) -> usize {
        // Invariant: item_enum is only entered when ident_at(i+1) matched.
        let name = self.ident_at(i + 1).expect("enum name checked by caller");
        let Some(end) = self.head_end(i + 2, hi) else {
            return hi;
        };
        if self.code[end].text != "{" {
            return end + 1;
        }
        let Some(close) = matching(self.code, end, "{", "}") else {
            return hi;
        };
        let mut def = EnumDef {
            name: name.to_string(),
            variants: Vec::new(),
        };
        let mut k = end + 1;
        while k < close {
            if self.punct_at(k, "#") && self.punct_at(k + 1, "[") {
                match matching(self.code, k + 1, "[", "]") {
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => break,
                }
            }
            let Some(v) = self.ident_at(k) else {
                k += 1;
                continue;
            };
            def.variants.push(v.to_string());
            // Skip payload/discriminant to the `,` at depth 0.
            let mut depth = 0i32;
            k += 1;
            while k < close {
                let t = self.code[k];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
        }
        if !discard {
            self.model.enums.push(def);
        }
        close + 1
    }

    fn item_impl(&mut self, i: usize, hi: usize, discard: bool) -> usize {
        let Some(end) = self.head_end(i + 1, hi) else {
            return hi;
        };
        if self.code[end].text != "{" {
            return end + 1;
        }
        // Owner: last identifier at angle depth 0 in the head — after
        // `for` when present (`impl Trait for Type`), so generics and
        // trait paths never win.
        let mut angle = 0i32;
        let mut start = i + 1;
        let mut owner: Option<String> = None;
        for k in i + 1..end {
            let t = self.code[k];
            match t.kind {
                TokKind::Punct if t.text == "<" => angle += 1,
                TokKind::Punct if t.text == ">" => angle = (angle - 1).max(0),
                TokKind::Ident if t.text == "for" && angle == 0 => {
                    start = k + 1;
                    owner = None;
                }
                TokKind::Ident if angle == 0 && k >= start && t.text != "dyn" => {
                    owner = Some(t.text.to_string());
                }
                _ => {}
            }
        }
        let Some(close) = matching(self.code, end, "{", "}") else {
            return hi;
        };
        if !discard {
            self.items(end + 1, close, owner.as_deref());
        }
        close + 1
    }

    fn item_fn(&mut self, i: usize, hi: usize, owner: Option<&str>, discard: bool) -> usize {
        // Invariant: item_fn is only entered when ident_at(i+1) matched.
        let name = self.ident_at(i + 1).expect("fn name checked by caller");
        // Signature: generics, params, return type — ends at the body
        // `{` or a `;` (trait method declaration).
        let Some(params) = self.head_end(i + 2, hi) else {
            return hi;
        };
        if self.code[params].text != "(" {
            return params + 1;
        }
        let Some(params_close) = matching(self.code, params, "(", ")") else {
            return hi;
        };
        let Some(body_open) = self.body_or_semi(params_close + 1, hi) else {
            return hi;
        };
        if self.code[body_open].text != "{" {
            return body_open + 1; // declaration without a body
        }
        let Some(close) = matching(self.code, body_open, "{", "}") else {
            return hi;
        };
        if !discard {
            let def = self.fn_facts(name, owner, body_open + 1, close);
            self.model.fns.push(def);
        }
        close + 1
    }

    /// Finds the fn body `{` (or trailing `;`) after the parameter
    /// list: skips the return type and any `where` clause, jumping
    /// over parenthesized/bracketed groups (tuple return types) and
    /// tracking angle depth (`->` arrows do not close angles).
    fn body_or_semi(&self, mut i: usize, hi: usize) -> Option<usize> {
        let mut angle = 0i32;
        while i < hi {
            let t = self.code[i];
            if t.kind == TokKind::Punct {
                match t.text {
                    "<" => angle += 1,
                    ">" => {
                        let arrow = i > 0 && self.punct_at(i - 1, "-") && self.glued(i - 1);
                        if !arrow {
                            angle = (angle - 1).max(0);
                        }
                    }
                    "(" if angle == 0 => {
                        i = matching(self.code, i, "(", ")")?;
                    }
                    "[" if angle == 0 => {
                        i = matching(self.code, i, "[", "]")?;
                    }
                    "{" | ";" if angle == 0 => return Some(i),
                    _ => {}
                }
            }
            i += 1;
        }
        None
    }

    /// Extracts the fact streams from a fn body `[lo, hi)`.
    fn fn_facts(&self, name: &str, owner: Option<&str>, lo: usize, hi: usize) -> FnDef {
        let mut def = FnDef {
            name: name.to_string(),
            owner: owner.map(str::to_string),
            idents: BTreeSet::new(),
            calls: BTreeSet::new(),
            bumps: Vec::new(),
            lets: Vec::new(),
            matches: Vec::new(),
        };
        let mut j = lo;
        while j < hi {
            let t = self.code[j];
            match t.kind {
                TokKind::Ident => {
                    def.idents.insert(t.text.to_string());
                    if self.punct_at(j + 1, "(") {
                        if let Some(kind) = self.call_kind(j) {
                            def.calls.insert(Call {
                                kind,
                                name: t.text.to_string(),
                            });
                        }
                    }
                    match t.text {
                        "let" => {
                            if let Some(b) = self.let_bind(j + 1, hi) {
                                def.lets.push(b);
                            }
                        }
                        "match" => {
                            // The match is modeled AND its tokens keep
                            // streaming into idents/calls/bumps below
                            // (decode paths live inside match arms).
                            if let Some((m, _)) = self.match_expr(j + 1, hi) {
                                def.matches.push(m);
                            }
                        }
                        _ => {}
                    }
                }
                TokKind::Punct if t.text == "+" && self.punct_at(j + 1, "=") && self.glued(j) => {
                    if let Some(chain) = self.receiver_chain(j) {
                        def.bumps.push(Bump {
                            chain,
                            line: t.line,
                            col: t.col,
                        });
                    }
                    j += 2;
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        def
    }

    /// Classifies the call whose callee ident sits at `j` (the `(` is
    /// at `j + 1`). `None` for methods on sub-objects, which resolve
    /// outside the file model.
    fn call_kind(&self, j: usize) -> Option<CallKind> {
        if j >= 1 && self.punct_at(j - 1, ".") {
            // Method call: follows the caller's impl only when the
            // receiver is exactly `self`.
            let plain_self = j >= 2
                && self.ident_at(j - 2) == Some("self")
                && !(j >= 3 && (self.punct_at(j - 3, ".") || self.punct_at(j - 3, "]")));
            return plain_self.then_some(CallKind::SelfCall);
        }
        if j >= 2 && self.punct_at(j - 1, ":") && self.punct_at(j - 2, ":") {
            return self
                .ident_at(j.checked_sub(3)?)
                .map(|q| CallKind::Qualified(q.to_string()));
        }
        Some(CallKind::Bare)
    }

    /// Walks backwards from the `+` of a `+=` to collect the receiver
    /// chain `a.b[idx].c` ⇒ `[a, b, c]`. Returns `None` for receivers
    /// the model cannot name (e.g. `(*p).x`, method-call results).
    fn receiver_chain(&self, plus: usize) -> Option<Vec<String>> {
        let mut chain: Vec<String> = Vec::new();
        let mut end = plus.checked_sub(1)?;
        loop {
            let t = self.code[end];
            match t.kind {
                TokKind::Punct if t.text == "]" => {
                    // Reverse-match the index group.
                    let mut depth = 0i32;
                    let mut k = end;
                    loop {
                        let u = self.code[k];
                        if u.kind == TokKind::Punct {
                            if u.text == "]" {
                                depth += 1;
                            } else if u.text == "[" {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                        }
                        k = k.checked_sub(1)?;
                    }
                    end = k.checked_sub(1)?;
                }
                TokKind::Ident => {
                    chain.push(t.text.to_string());
                    if end >= 1 && self.punct_at(end - 1, ".") {
                        end = end.checked_sub(2)?;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        if chain.is_empty() {
            return None;
        }
        chain.reverse();
        Some(chain)
    }

    /// Parses the binding after a `let` keyword at `lo - 1`: pattern
    /// identifiers up to the `=`, initializer identifiers up to the
    /// statement/block end.
    fn let_bind(&self, lo: usize, hi: usize) -> Option<LetBind> {
        let mut depth = 0i32;
        let mut names = Vec::new();
        let mut j = lo;
        let eq = loop {
            if j >= hi {
                return None;
            }
            let t = self.code[j];
            match t.kind {
                TokKind::Punct => match t.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 => break j,
                    ";" if depth == 0 => return None, // `let x;`
                    _ => {}
                },
                TokKind::Ident => {
                    let c = t.text.chars().next().unwrap_or('_');
                    if c.is_lowercase() && !matches!(t.text, "mut" | "ref" | "box") {
                        names.push(t.text.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        };
        let mut rhs = BTreeSet::new();
        let mut depth = 0i32;
        let mut j = eq + 1;
        while j < hi {
            let t = self.code[j];
            match t.kind {
                TokKind::Punct => match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" | "{" if depth == 0 => break,
                    _ => {}
                },
                TokKind::Ident => {
                    if t.text == "else" && depth == 0 {
                        break; // let-else / if-let body
                    }
                    rhs.insert(t.text.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        Some(LetBind { names, rhs })
    }

    /// Parses a match expression whose head starts at `lo` (just past
    /// the `match` keyword). Returns the model and the index past the
    /// closing brace.
    fn match_expr(&self, lo: usize, hi: usize) -> Option<(MatchExpr, usize)> {
        // Head: to the first `{` at paren/bracket depth 0.
        let mut depth = 0i32;
        let mut j = lo;
        let open = loop {
            if j >= hi {
                return None;
            }
            let t = self.code[j];
            if t.kind == TokKind::Punct {
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break j,
                    ";" if depth == 0 => return None,
                    _ => {}
                }
            }
            j += 1;
        };
        let close = matching(self.code, open, "{", "}")?;
        let head = self.code[lo.saturating_sub(1)];
        let mut m = MatchExpr {
            line: head.line,
            col: head.col,
            arms: Vec::new(),
        };
        let mut k = open + 1;
        while k < close {
            // Arm attributes.
            if self.punct_at(k, "#") && self.punct_at(k + 1, "[") {
                match matching(self.code, k + 1, "[", "]") {
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => break,
                }
            }
            // Pattern: to the `=>` at depth 0.
            let pat_start = k;
            let mut depth = 0i32;
            let arrow = loop {
                if k >= close {
                    break None;
                }
                let t = self.code[k];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" if depth == 0 && self.punct_at(k + 1, ">") && self.glued(k) => {
                            break Some(k);
                        }
                        _ => {}
                    }
                }
                k += 1;
            };
            let Some(arrow) = arrow else {
                break;
            };
            let pattern = &self.code[pat_start..arrow];
            // Body: a block, or tokens to the `,` at depth 0.
            let body_start = arrow + 2;
            let body_end;
            if self.punct_at(body_start, "{") {
                let c = matching(self.code, body_start, "{", "}")?;
                body_end = c + 1;
                k = if self.punct_at(body_end, ",") {
                    body_end + 1
                } else {
                    body_end
                };
            } else {
                let mut depth = 0i32;
                let mut b = body_start;
                while b < close {
                    let t = self.code[b];
                    if t.kind == TokKind::Punct {
                        match t.text {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    b += 1;
                }
                body_end = b;
                k = if b < close { b + 1 } else { b };
            }
            let body = &self.code[body_start..body_end.min(close + 1)];
            let first = pattern.first().map(|t| **t);
            let wildcard = match pattern {
                [t] => {
                    t.text == "_"
                        || (t.kind == TokKind::Ident && !matches!(t.text, "true" | "false"))
                }
                _ => false,
            };
            m.arms.push(MatchArm {
                pattern_paths: path_pairs(pattern),
                body_paths: path_pairs(body),
                wildcard,
                line: first.map_or(head.line, |t| t.line),
                col: first.map_or(head.col, |t| t.col),
            });
        }
        Some((m, close + 1))
    }
}

/// Collects `(qualifier, name)` pairs from `Ident :: Ident`
/// sequences; `a::b::C` yields `(a, b)` and `(b, C)`.
fn path_pairs(toks: &[&Tok<'_>]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for w in 0..toks.len().saturating_sub(3) {
        let [a, c1, c2, b] = [toks[w], toks[w + 1], toks[w + 2], toks[w + 3]];
        if a.kind == TokKind::Ident
            && b.kind == TokKind::Ident
            && c1.kind == TokKind::Punct
            && c1.text == ":"
            && c2.kind == TokKind::Punct
            && c2.text == ":"
        {
            out.push((a.text.to_string(), b.text.to_string()));
        }
    }
    out
}
