//! X002 self-test fixture: global counter bumps with their
//! per-tenant mirrors, in both shapes the machine uses (an `if let`
//! alias binding and a direct indexed bump). The mutation harness
//! deletes the `MUTATE:x002` line (the `hits` mirror) and expects
//! counter-mirror to object.

pub struct PmuCounters {
    pub hits: u64,
}

pub struct TenantStats {
    pub promotions: u64,
}

pub struct Sim {
    counters: PmuCounters,
    tenant_counters: Vec<PmuCounters>,
    promotions: u64,
    tenant_stats: Vec<TenantStats>,
}

impl Sim {
    pub fn record_hit(&mut self, proc_idx: usize) {
        self.counters.hits += 1;
        if let Some(tc) = self.tenant_counters.get_mut(proc_idx) { tc.hits += 1; } // MUTATE:x002
    }

    pub fn record_promotion(&mut self, tenant: usize) {
        self.promotions += 1;
        if !self.tenant_stats.is_empty() {
            self.tenant_stats[tenant].promotions += 1;
        }
    }
}
