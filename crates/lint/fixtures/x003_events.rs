//! X003 self-test fixture: exhaustive event dispatch plus a tag
//! decoder whose error arm carries the sanctioned suppression. The
//! mutation harness deletes the `MUTATE:x003` line (the `Gamma` arm
//! of `name`) and expects event-exhaustiveness to object.

pub enum EventKind {
    Alpha,
    Beta,
    Gamma,
}

pub fn name(k: &EventKind) -> &'static str {
    match k {
        EventKind::Alpha => "alpha",
        EventKind::Beta => "beta",
        EventKind::Gamma => "gamma", // MUTATE:x003
    }
}

pub fn decode(tag: u8) -> Result<EventKind, String> {
    match tag {
        0 => Ok(EventKind::Alpha),
        1 => Ok(EventKind::Beta),
        2 => Ok(EventKind::Gamma),
        // pact-lint: allow(event-exhaustiveness) — unknown tags from foreign frames must error, not map to a variant
        other => Err(format!("unknown trace event tag {other}")),
    }
}
