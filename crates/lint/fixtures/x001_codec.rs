//! X001 self-test fixture: a codec-paired struct with full field
//! round-trip coverage and one justified skip. The mutation harness
//! deletes the `MUTATE:x001` line (the encode write of `b`) and
//! expects snapshot-coverage to object.

pub struct Snap {
    a: u64,
    b: u64,
    // snapshot: skip — rebuilt from config on resume
    scratch: u64,
}

impl Snap {
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.a);
        w.put_u64(self.b); // MUTATE:x001
    }

    pub fn decode_state(&mut self, r: &mut ByteReader) {
        self.a = r.take_u64();
        self.b = r.take_u64();
    }
}
