//! Overhead guard: the tracer must be allocation-free on the emit
//! path. A disabled sink never allocates at all, and an enabled ring
//! allocates exactly once (up front) no matter how many events flow
//! through it. Enforced with a counting global allocator so a future
//! `Vec::push`-style regression fails loudly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pact_obs::{EventKind, Tracer};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn sample_event(i: u64) -> EventKind {
    match i % 3 {
        0 => EventKind::OrderIssued {
            page: i,
            to: 0,
            sync: false,
        },
        1 => EventKind::WindowBoundary {
            index: i,
            promotions: i,
            demotions: 0,
            failed_promotions: 0,
            dropped_orders: 0,
        },
        _ => EventKind::PromotionRejected { page: i },
    }
}

#[test]
fn disabled_tracer_emits_without_allocating() {
    let mut t = Tracer::disabled();
    let before = allocations();
    for i in 0..1_000_000u64 {
        t.emit(i, sample_event(i));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled tracer allocated on the emit path"
    );
    assert_eq!(t.len(), 0);
    assert_eq!(t.capacity(), 0);
}

#[test]
fn ring_tracer_never_allocates_after_construction() {
    let mut t = Tracer::ring(4096);
    let before = allocations();
    // Overflow the ring many times over: overwrite, don't grow.
    for i in 0..1_000_000u64 {
        t.emit(i, sample_event(i));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "ring tracer allocated while emitting (ring must be preallocated)"
    );
    assert_eq!(t.len(), 4096);
    assert!(t.overwritten() > 0);
}
