//! Determinism acceptance tests for the observability layer.
//!
//! The tracing/metrics substrate is only trustworthy if it is
//! *reproducible*: the same seed must produce byte-identical exports,
//! tracing must not perturb the simulation, and the parallel sweep
//! executor must write the same trace files regardless of `PACT_JOBS`.

use std::fs;
use std::path::PathBuf;

use pact_bench::{ratio_sweep_traced, Harness, TierRatio};
use pact_obs::{validate, TraceConfig, TraceFormat, Tracer, DEFAULT_RING_CAPACITY};
use pact_tiersim::export_trace;
use pact_workloads::suite::{build, Scale};

fn harness() -> Harness {
    Harness::new(build("bc-kron", Scale::Smoke, 42))
}

/// Tracing must be observation-only: a traced run and an untraced run
/// of the same cell produce the same report (compared through the
/// canonical JSON serialization, which covers cycles, counters,
/// windows, and the per-window metrics snapshots).
#[test]
fn traced_run_report_matches_untraced() {
    let h = harness();
    let ratio = TierRatio::new(1, 1);
    let untraced = h.run_policy("pact", ratio);
    let mut tracer = Tracer::ring(DEFAULT_RING_CAPACITY);
    let traced = h.run_policy_traced("pact", ratio, &mut tracer);
    assert!(!tracer.is_empty(), "traced run recorded no events");
    assert_eq!(
        untraced.report.to_json(),
        traced.report.to_json(),
        "tracing perturbed the simulation"
    );
}

/// Same seed, fresh harness → byte-identical Chrome and JSONL exports,
/// and both must pass the JSON validator.
#[test]
fn repeated_seeded_runs_export_identical_traces() {
    let run = || {
        let h = harness();
        let mut tracer = Tracer::ring(DEFAULT_RING_CAPACITY);
        let out = h.run_policy_traced("pact", TierRatio::new(1, 1), &mut tracer);
        let chrome = export_trace(
            &out.report,
            &tracer,
            "bc-kron/pact/1:1",
            TraceFormat::Chrome,
        );
        let jsonl = export_trace(&out.report, &tracer, "bc-kron/pact/1:1", TraceFormat::Jsonl);
        (chrome, jsonl)
    };
    let (chrome_a, jsonl_a) = run();
    let (chrome_b, jsonl_b) = run();
    assert_eq!(chrome_a, chrome_b, "chrome export not reproducible");
    assert_eq!(jsonl_a, jsonl_b, "jsonl export not reproducible");

    validate(&chrome_a).expect("chrome export is valid JSON");
    assert!(!jsonl_a.is_empty());
    for (i, line) in jsonl_a.lines().enumerate() {
        validate(line).unwrap_or_else(|e| panic!("jsonl line {} invalid: {e}", i + 1));
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pact-obs-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Collects `(file name, contents)` for every file in `dir`, sorted by
/// name so directory iteration order cannot affect the comparison.
fn dir_contents(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("trace dir exists")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            let body = fs::read(e.path()).expect("read trace file");
            (name, body)
        })
        .collect();
    files.sort();
    files
}

/// The sweep executor must write byte-identical per-cell trace files
/// whether the sweep runs serially or with a worker pool: file names
/// and contents derive only from the cell identity, never from
/// scheduling order.
#[test]
fn sweep_trace_files_identical_across_jobs() {
    let h = harness();
    let policies = ["pact", "notier"];
    let ratios = [TierRatio::new(1, 1), TierRatio::new(1, 4)];

    let dir1 = fresh_dir("jobs1");
    let dir4 = fresh_dir("jobs4");
    let cfg1 = TraceConfig {
        path: dir1.clone(),
        format: TraceFormat::Jsonl,
    };
    let cfg4 = TraceConfig {
        path: dir4.clone(),
        format: TraceFormat::Jsonl,
    };

    let serial = ratio_sweep_traced(&h, &policies, &ratios, 1, Some(&cfg1));
    let parallel = ratio_sweep_traced(&h, &policies, &ratios, 4, Some(&cfg4));
    assert_eq!(serial, parallel, "sweep results diverged across jobs");

    let files1 = dir_contents(&dir1);
    let files4 = dir_contents(&dir4);
    assert_eq!(
        files1.len(),
        policies.len() * ratios.len(),
        "one trace file per cell"
    );
    assert_eq!(
        files1.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        files4.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "trace file names depend on scheduling"
    );
    for ((name, body1), (_, body4)) in files1.iter().zip(files4.iter()) {
        assert_eq!(body1, body4, "{name} differs between jobs=1 and jobs=4");
    }

    let _ = fs::remove_dir_all(&dir1);
    let _ = fs::remove_dir_all(&dir4);
}

/// Chrome exports also survive the jobs=1 vs jobs=4 comparison (the
/// format routes through a different serializer path than JSONL).
#[test]
fn sweep_chrome_traces_identical_across_jobs() {
    let h = harness();
    let policies = ["pact"];
    let ratios = [TierRatio::new(1, 1)];

    let dir1 = fresh_dir("chrome1");
    let dir4 = fresh_dir("chrome4");
    let cfg = |p: &PathBuf| TraceConfig {
        path: p.clone(),
        format: TraceFormat::Chrome,
    };
    ratio_sweep_traced(&h, &policies, &ratios, 1, Some(&cfg(&dir1)));
    ratio_sweep_traced(&h, &policies, &ratios, 4, Some(&cfg(&dir4)));

    let files1 = dir_contents(&dir1);
    let files4 = dir_contents(&dir4);
    assert_eq!(files1, files4);
    for (name, body) in &files1 {
        let text = std::str::from_utf8(body).expect("utf-8 trace");
        validate(text).unwrap_or_else(|e| panic!("{name} invalid chrome JSON: {e}"));
    }

    let _ = fs::remove_dir_all(&dir1);
    let _ = fs::remove_dir_all(&dir4);
}
