//! Trace exporters: Chrome-trace JSON for timeline visualisation and
//! JSONL for machine-readable per-window series.
//!
//! * [`chrome_trace`] emits the Trace Event Format understood by
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//!   instant events for migration activity, begin/end pairs for
//!   channel-saturation episodes, and counter tracks for every
//!   per-window series. Timestamps are **simulation cycles** (the
//!   `ts` unit reads as microseconds in the UI; one "µs" = one cycle).
//! * [`jsonl`] emits one JSON object per line: first every trace
//!   event, then every per-window series row, distinguished by the
//!   `"t"` field (`"event"` / `"window"`).
//!
//! Both formats are produced with the deterministic [`crate::json`]
//! writer, so identical runs export byte-identical files.
//!
//! Runtime selection: the `PACT_TRACE` / `PACT_TRACE_FORMAT`
//! variables (named by [`TRACE_ENV`] / [`TRACE_FORMAT_ENV`]) are
//! resolved into a [`TraceConfig`] by `pact-bench`'s `env` registry
//! module — this crate never reads the environment itself.

use crate::json::JsonWriter;
use crate::tracer::{tier_name, EventKind, TraceEvent};

/// Output format of a trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Chrome Trace Event Format JSON (Perfetto / `chrome://tracing`).
    #[default]
    Chrome,
    /// One JSON object per line: events, then per-window rows.
    Jsonl,
}

impl TraceFormat {
    /// Parses `"chrome"` or `"jsonl"` (case-insensitive).
    pub fn parse(s: &str) -> Option<TraceFormat> {
        match s.to_ascii_lowercase().as_str() {
            "chrome" => Some(TraceFormat::Chrome),
            "jsonl" => Some(TraceFormat::Jsonl),
            _ => None,
        }
    }

    /// Conventional file extension (without dot).
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Chrome => "json",
            TraceFormat::Jsonl => "jsonl",
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFormat::Chrome => write!(f, "chrome"),
            TraceFormat::Jsonl => write!(f, "jsonl"),
        }
    }
}

/// Environment variable naming the trace output path.
pub const TRACE_ENV: &str = "PACT_TRACE";

/// Environment variable selecting the trace format.
pub const TRACE_FORMAT_ENV: &str = "PACT_TRACE_FORMAT";

/// Where and how to write traces. Constructed by binaries (typically
/// from the `pact-bench` `env` registry); this crate only consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output path (file for single runs, directory for sweeps).
    pub path: std::path::PathBuf,
    /// Export format.
    pub format: TraceFormat,
}

/// One window of per-window series data, supplied by the simulator's
/// run report (this crate sits below the simulator and never sees its
/// types directly).
#[derive(Debug, Clone)]
pub struct WindowRow<'a> {
    /// Zero-based window index.
    pub index: u64,
    /// Machine cycle at the end of the window.
    pub end_cycles: u64,
    /// Named series values for this window (promotions, telemetry,
    /// metric snapshots, ...), in a deterministic order.
    pub series: &'a [(&'static str, f64)],
}

const PID: u64 = 1;
/// Chrome-trace thread lanes: machine-level events, the migration
/// daemon, and one lane per channel.
const TID_MACHINE: u64 = 1;
const TID_MIGRATION: u64 = 2;
const TID_CHANNEL_BASE: u64 = 3;

fn event_header(j: &mut JsonWriter, name: &str, ph: &str, ts: u64, tid: u64) {
    j.begin_object();
    j.field_str("name", name);
    j.field_str("ph", ph);
    j.field_u64("ts", ts);
    j.field_u64("pid", PID);
    j.field_u64("tid", tid);
}

fn meta_thread(j: &mut JsonWriter, tid: u64, name: &str) {
    j.begin_object();
    j.field_str("name", "thread_name");
    j.field_str("ph", "M");
    j.field_u64("pid", PID);
    j.field_u64("tid", tid);
    j.key("args");
    j.begin_object();
    j.field_str("name", name);
    j.end_object();
    j.end_object();
}

/// Renders `events` + `windows` as a Chrome Trace Event Format JSON
/// document. `label` names the traced run (shown as the process name).
pub fn chrome_trace(label: &str, events: &[TraceEvent], windows: &[WindowRow<'_>]) -> String {
    let mut j = JsonWriter::new();
    j.begin_object();
    j.field_str("displayTimeUnit", "ms");
    j.key("otherData");
    j.begin_object();
    j.field_str("clock", "sim-cycles");
    j.field_str("run", label);
    j.end_object();
    j.key("traceEvents");
    j.begin_array();

    // Process/thread metadata so the UI shows meaningful lane names.
    j.begin_object();
    j.field_str("name", "process_name");
    j.field_str("ph", "M");
    j.field_u64("pid", PID);
    j.key("args");
    j.begin_object();
    j.field_str("name", label);
    j.end_object();
    j.end_object();
    meta_thread(&mut j, TID_MACHINE, "machine");
    meta_thread(&mut j, TID_MIGRATION, "migration-daemon");
    meta_thread(&mut j, TID_CHANNEL_BASE, "channel-fast");
    meta_thread(&mut j, TID_CHANNEL_BASE + 1, "channel-slow");

    for ev in events {
        match ev.kind {
            EventKind::WindowBoundary {
                index,
                promotions,
                demotions,
                failed_promotions,
                dropped_orders,
            } => {
                event_header(&mut j, "window", "I", ev.cycle, TID_MACHINE);
                j.field_str("s", "g");
                j.key("args");
                j.begin_object();
                j.field_u64("index", index);
                j.end_object();
                j.end_object();
                // Counter tracks: migration flow and queue pressure.
                event_header(&mut j, "migrations", "C", ev.cycle, TID_MACHINE);
                j.key("args");
                j.begin_object();
                j.field_u64("promotions", promotions);
                j.field_u64("demotions", demotions);
                j.end_object();
                j.end_object();
                event_header(&mut j, "queue-pressure", "C", ev.cycle, TID_MACHINE);
                j.key("args");
                j.begin_object();
                j.field_u64("failed_promotions", failed_promotions);
                j.field_u64("dropped_orders", dropped_orders);
                j.end_object();
                j.end_object();
            }
            EventKind::OrderIssued { page, to, sync } => {
                event_header(&mut j, "order-issued", "I", ev.cycle, TID_MIGRATION);
                j.field_str("s", "t");
                j.key("args");
                j.begin_object();
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.field_bool("sync", sync);
                j.end_object();
                j.end_object();
            }
            EventKind::OrderCompleted { page, to, moved } => {
                event_header(&mut j, "order-completed", "I", ev.cycle, TID_MIGRATION);
                j.field_str("s", "t");
                j.key("args");
                j.begin_object();
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.field_u64("moved_pages", moved);
                j.end_object();
                j.end_object();
            }
            EventKind::OrderDropped { page, to } => {
                event_header(&mut j, "order-dropped", "I", ev.cycle, TID_MIGRATION);
                j.field_str("s", "t");
                j.key("args");
                j.begin_object();
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.end_object();
                j.end_object();
            }
            EventKind::PromotionRejected { page } => {
                event_header(&mut j, "promotion-rejected", "I", ev.cycle, TID_MIGRATION);
                j.field_str("s", "t");
                j.key("args");
                j.begin_object();
                j.field_u64("page", page);
                j.end_object();
                j.end_object();
            }
            EventKind::ChannelSaturated {
                tier,
                backlog_cycles,
            } => {
                let tid = TID_CHANNEL_BASE + tier as u64;
                event_header(&mut j, "saturated", "B", ev.cycle, tid);
                j.key("args");
                j.begin_object();
                j.field_u64("backlog_cycles", backlog_cycles);
                j.end_object();
                j.end_object();
            }
            EventKind::ChannelRecovered { tier, .. } => {
                let tid = TID_CHANNEL_BASE + tier as u64;
                event_header(&mut j, "saturated", "E", ev.cycle, tid);
                j.end_object();
            }
            EventKind::SampleBatch { pebs, hint_faults } => {
                event_header(&mut j, "samples", "C", ev.cycle, TID_MACHINE);
                j.key("args");
                j.begin_object();
                j.field_u64("pebs", pebs);
                j.field_u64("hint_faults", hint_faults);
                j.end_object();
                j.end_object();
            }
            EventKind::PolicyTelemetry { key, value } => {
                event_header(&mut j, key, "C", ev.cycle, TID_MACHINE);
                j.key("args");
                j.begin_object();
                j.field_f64("value", value);
                j.end_object();
                j.end_object();
            }
            EventKind::FaultInjected { kind, arg } => {
                event_header(&mut j, "fault-injected", "I", ev.cycle, TID_MACHINE);
                j.field_str("s", "t");
                j.key("args");
                j.begin_object();
                j.field_str("kind", kind);
                j.field_u64("arg", arg);
                j.end_object();
                j.end_object();
            }
            EventKind::OrderRetried { page, to, attempt } => {
                event_header(&mut j, "order-retried", "I", ev.cycle, TID_MIGRATION);
                j.field_str("s", "t");
                j.key("args");
                j.begin_object();
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.field_u64("attempt", attempt as u64);
                j.end_object();
                j.end_object();
            }
            EventKind::AdmissionRejected { tenant, page, to } => {
                event_header(&mut j, "admission-rejected", "I", ev.cycle, TID_MIGRATION);
                j.field_str("s", "t");
                j.key("args");
                j.begin_object();
                j.field_u64("tenant", tenant as u64);
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.end_object();
                j.end_object();
            }
        }
    }

    // Per-window series as counter tracks (one per series name).
    for w in windows {
        for &(name, value) in w.series {
            event_header(&mut j, name, "C", w.end_cycles, TID_MACHINE);
            j.key("args");
            j.begin_object();
            j.field_f64("value", value);
            j.end_object();
            j.end_object();
        }
    }

    j.end_array();
    j.end_object();
    let mut s = j.finish();
    s.push('\n');
    s
}

/// Renders `events` + `windows` as JSONL: one compact JSON object per
/// line, events first (`"t":"event"`), then windows (`"t":"window"`).
pub fn jsonl(label: &str, events: &[TraceEvent], windows: &[WindowRow<'_>]) -> String {
    let mut out = String::new();
    {
        let mut j = JsonWriter::new();
        j.begin_object();
        j.field_str("t", "meta");
        j.field_str("run", label);
        j.field_u64("events", events.len() as u64);
        j.field_u64("windows", windows.len() as u64);
        j.end_object();
        out.push_str(&j.finish());
        out.push('\n');
    }
    for ev in events {
        let mut j = JsonWriter::new();
        j.begin_object();
        j.field_str("t", "event");
        j.field_str("type", ev.kind.name());
        j.field_u64("cycle", ev.cycle);
        match ev.kind {
            EventKind::WindowBoundary {
                index,
                promotions,
                demotions,
                failed_promotions,
                dropped_orders,
            } => {
                j.field_u64("index", index);
                j.field_u64("promotions", promotions);
                j.field_u64("demotions", demotions);
                j.field_u64("failed_promotions", failed_promotions);
                j.field_u64("dropped_orders", dropped_orders);
            }
            EventKind::OrderIssued { page, to, sync } => {
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.field_bool("sync", sync);
            }
            EventKind::OrderCompleted { page, to, moved } => {
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.field_u64("moved_pages", moved);
            }
            EventKind::OrderDropped { page, to } => {
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
            }
            EventKind::PromotionRejected { page } => {
                j.field_u64("page", page);
            }
            EventKind::ChannelSaturated {
                tier,
                backlog_cycles,
            } => {
                j.field_str("tier", tier_name(tier));
                j.field_u64("backlog_cycles", backlog_cycles);
            }
            EventKind::ChannelRecovered {
                tier,
                episode_cycles,
            } => {
                j.field_str("tier", tier_name(tier));
                j.field_u64("episode_cycles", episode_cycles);
            }
            EventKind::SampleBatch { pebs, hint_faults } => {
                j.field_u64("pebs", pebs);
                j.field_u64("hint_faults", hint_faults);
            }
            EventKind::PolicyTelemetry { key, value } => {
                j.field_str("key", key);
                j.field_f64("value", value);
            }
            EventKind::FaultInjected { kind, arg } => {
                j.field_str("kind", kind);
                j.field_u64("arg", arg);
            }
            EventKind::OrderRetried { page, to, attempt } => {
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
                j.field_u64("attempt", attempt as u64);
            }
            EventKind::AdmissionRejected { tenant, page, to } => {
                j.field_u64("tenant", tenant as u64);
                j.field_u64("page", page);
                j.field_str("to", tier_name(to));
            }
        }
        j.end_object();
        out.push_str(&j.finish());
        out.push('\n');
    }
    for w in windows {
        let mut j = JsonWriter::new();
        j.begin_object();
        j.field_str("t", "window");
        j.field_u64("index", w.index);
        j.field_u64("end_cycles", w.end_cycles);
        for &(name, value) in w.series {
            j.field_f64(name, value);
        }
        j.end_object();
        out.push_str(&j.finish());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 10,
                kind: EventKind::OrderIssued {
                    page: 7,
                    to: 0,
                    sync: false,
                },
            },
            TraceEvent {
                cycle: 20,
                kind: EventKind::ChannelSaturated {
                    tier: 1,
                    backlog_cycles: 900,
                },
            },
            TraceEvent {
                cycle: 45,
                kind: EventKind::ChannelRecovered {
                    tier: 1,
                    episode_cycles: 25,
                },
            },
            TraceEvent {
                cycle: 50,
                kind: EventKind::WindowBoundary {
                    index: 0,
                    promotions: 1,
                    demotions: 0,
                    failed_promotions: 2,
                    dropped_orders: 3,
                },
            },
            TraceEvent {
                cycle: 50,
                kind: EventKind::PolicyTelemetry {
                    key: "bin_width",
                    value: 1.5,
                },
            },
            TraceEvent {
                cycle: 60,
                kind: EventKind::FaultInjected {
                    kind: "channel_stall",
                    arg: 20_000,
                },
            },
            TraceEvent {
                cycle: 70,
                kind: EventKind::OrderRetried {
                    page: 7,
                    to: 0,
                    attempt: 2,
                },
            },
        ]
    }

    type SampleWindow = (u64, u64, Vec<(&'static str, f64)>);

    fn sample_windows() -> Vec<SampleWindow> {
        vec![(0, 50, vec![("promotions", 1.0), ("queue/len", 2.0)])]
    }

    fn rows<'a>(w: &'a [SampleWindow]) -> Vec<WindowRow<'a>> {
        w.iter()
            .map(|(i, e, s)| WindowRow {
                index: *i,
                end_cycles: *e,
                series: s,
            })
            .collect()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let w = sample_windows();
        let s = chrome_trace("unit", &sample_events(), &rows(&w));
        validate(&s).unwrap();
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("order-issued"));
        assert!(s.contains("\"ph\":\"B\"") && s.contains("\"ph\":\"E\""));
        assert!(s.contains("queue-pressure"));
        assert!(s.contains("bin_width"));
        assert!(s.contains("fault-injected") && s.contains("channel_stall"));
        assert!(s.contains("order-retried"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn jsonl_lines_each_validate() {
        let w = sample_windows();
        let s = jsonl("unit", &sample_events(), &rows(&w));
        let lines: Vec<&str> = s.lines().collect();
        // meta + 7 events + 1 window.
        assert_eq!(lines.len(), 9);
        for line in &lines {
            validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[0].contains("\"t\":\"meta\""));
        assert!(lines[1].contains("\"type\":\"order_issued\""));
        assert!(lines[6].contains("\"type\":\"fault_injected\""));
        assert!(lines[7].contains("\"type\":\"order_retried\""));
        assert!(lines[8].contains("\"t\":\"window\""));
        assert!(lines[8].contains("\"queue/len\":2"));
    }

    #[test]
    fn exports_are_deterministic() {
        let w = sample_windows();
        let a = chrome_trace("unit", &sample_events(), &rows(&w));
        let b = chrome_trace("unit", &sample_events(), &rows(&w));
        assert_eq!(a, b);
        assert_eq!(
            jsonl("unit", &sample_events(), &rows(&w)),
            jsonl("unit", &sample_events(), &rows(&w))
        );
    }

    #[test]
    fn format_parsing() {
        assert_eq!(TraceFormat::parse("chrome"), Some(TraceFormat::Chrome));
        assert_eq!(TraceFormat::parse("JSONL"), Some(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("xml"), None);
        assert_eq!(TraceFormat::Chrome.extension(), "json");
        assert_eq!(TraceFormat::Jsonl.extension(), "jsonl");
        assert_eq!(TraceFormat::Jsonl.to_string(), "jsonl");
    }
}
