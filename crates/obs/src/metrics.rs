//! Per-window metrics registry: named counters, gauges, and histograms
//! that substrate components register once and update cheaply.
//!
//! Registration happens at machine construction (a linear name lookup,
//! off the hot path); updates go through a dense [`MetricId`] index —
//! one bounds-checked array access, no hashing, no allocation. The
//! registry is snapshotted at every sampling-window boundary into the
//! window record: counters report their delta over the window, gauges
//! their current value, histograms the mean **and** deterministic
//! p50/p90/p99/p999 quantiles of the values observed during the window
//! (and then reset). Every histogram therefore contributes five
//! snapshot entries, labelled by the `&'static str` names supplied at
//! registration via [`HistogramNames`] — the snapshot stays a flat
//! `(&'static str, f64)` list, allocated in one exact-capacity `Vec`
//! per window. Snapshot order is registration order, so reports are
//! deterministic.

use pact_stats::codec::{ByteReader, ByteWriter};
use pact_stats::LogHistogram;

use crate::intern::intern;

/// Dense handle to a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count; snapshots report the per-window delta.
    Counter,
    /// Point-in-time value; snapshots report the latest set value.
    Gauge,
    /// Distribution of observed values; snapshots report the window
    /// mean plus p50/p90/p99/p999 and reset the distribution.
    Histogram,
}

/// The five snapshot labels of one histogram. Snapshot entries are
/// `(&'static str, f64)` pairs, so the quantile labels must be string
/// literals too — callers declare one of these as a `static` next to
/// the registration site.
#[derive(Debug, Clone, Copy)]
pub struct HistogramNames {
    /// Label of the window-mean entry (the histogram's canonical name).
    pub mean: &'static str,
    /// Label of the median entry.
    pub p50: &'static str,
    /// Label of the 90th-percentile entry.
    pub p90: &'static str,
    /// Label of the 99th-percentile entry.
    pub p99: &'static str,
    /// Label of the 99.9th-percentile entry.
    pub p999: &'static str,
}

/// Snapshot entries contributed by one histogram.
const HIST_ENTRIES: usize = 5;

#[derive(Debug, Clone)]
enum Value {
    Counter {
        total: u64,
        last_snapshot: u64,
    },
    Gauge(f64),
    Histogram {
        hist: LogHistogram,
        names: HistogramNames,
        sum: f64,
        n: u64,
    },
}

#[derive(Debug, Clone)]
struct Metric {
    name: &'static str,
    value: Value,
}

/// The registry of named metrics for one machine run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    /// Total snapshot entries across all metrics (histograms count 5),
    /// so the per-window snapshot `Vec` is sized exactly — one
    /// allocation, pinned by the window-allocation test.
    // snapshot: skip — re-accumulated as decode re-registers each metric
    snapshot_width: usize,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &'static str, value: Value, width: usize) -> MetricId {
        if let Some(i) = self.metrics.iter().position(|m| m.name == name) {
            return MetricId(i);
        }
        self.metrics.push(Metric { name, value });
        self.snapshot_width += width;
        MetricId(self.metrics.len() - 1)
    }

    /// Registers (or finds) a counter named `name`.
    pub fn counter(&mut self, name: &'static str) -> MetricId {
        self.register(
            name,
            Value::Counter {
                total: 0,
                last_snapshot: 0,
            },
            1,
        )
    }

    /// Registers (or finds) a gauge named `name`.
    pub fn gauge(&mut self, name: &'static str) -> MetricId {
        self.register(name, Value::Gauge(0.0), 1)
    }

    /// Registers (or finds) a log-bucketed histogram. The histogram is
    /// keyed by `names.mean`; its five snapshot entries carry the five
    /// labels of `names` (see [`pact_stats::LogHistogram`] for the
    /// bucketing and quantile semantics).
    pub fn histogram(&mut self, names: HistogramNames) -> MetricId {
        self.register(
            names.mean,
            Value::Histogram {
                hist: LogHistogram::new(),
                names,
                sum: 0.0,
                n: 0,
            },
            HIST_ENTRIES,
        )
    }

    /// Adds `by` to a counter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a counter.
    #[inline]
    pub fn inc(&mut self, id: MetricId, by: u64) {
        match &mut self.metrics[id.0].value {
            Value::Counter { total, .. } => *total += by,
            _ => panic!("metric is not a counter"),
        }
    }

    /// Sets a gauge to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a gauge.
    #[inline]
    pub fn set(&mut self, id: MetricId, v: f64) {
        match &mut self.metrics[id.0].value {
            Value::Gauge(g) => *g = v,
            _ => panic!("metric is not a gauge"),
        }
    }

    /// Records `v` into a histogram. Values are bucketed as rounded
    /// non-negative integers (the simulator's cycle counts); negative
    /// or non-finite values clamp to 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a histogram.
    #[inline]
    pub fn observe(&mut self, id: MetricId, v: f64) {
        match &mut self.metrics[id.0].value {
            Value::Histogram { hist, sum, n, .. } => {
                let iv = if v.is_finite() && v > 0.0 {
                    v.round() as u64
                } else {
                    0
                };
                hist.record(iv);
                *sum += v;
                *n += 1;
            }
            _ => panic!("metric is not a histogram"),
        }
    }

    /// Current cumulative value of a counter.
    pub fn counter_total(&self, id: MetricId) -> u64 {
        match &self.metrics[id.0].value {
            Value::Counter { total, .. } => *total,
            _ => panic!("metric is not a counter"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry has no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Kind of a registered metric.
    pub fn kind(&self, id: MetricId) -> MetricKind {
        match &self.metrics[id.0].value {
            Value::Counter { .. } => MetricKind::Counter,
            Value::Gauge(_) => MetricKind::Gauge,
            Value::Histogram { .. } => MetricKind::Histogram,
        }
    }

    /// Appends one histogram's five snapshot entries.
    fn push_hist_entries(
        out: &mut Vec<(&'static str, f64)>,
        hist: &LogHistogram,
        names: &HistogramNames,
        sum: f64,
        n: u64,
    ) {
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        out.push((names.mean, mean));
        out.push((names.p50, hist.value_at_quantile(0.5) as f64));
        out.push((names.p90, hist.value_at_quantile(0.9) as f64));
        out.push((names.p99, hist.value_at_quantile(0.99) as f64));
        out.push((names.p999, hist.value_at_quantile(0.999) as f64));
    }

    /// Non-mutating preview of what [`snapshot_window`] would return
    /// right now: the same entries in the same order, with no
    /// per-window state reset. The invariant checker uses this to
    /// cross-check the snapshot actually embedded in a window record
    /// without perturbing the registry.
    ///
    /// [`snapshot_window`]: Self::snapshot_window
    pub fn peek_window(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::with_capacity(self.snapshot_width);
        for m in &self.metrics {
            match &m.value {
                Value::Counter {
                    total,
                    last_snapshot,
                } => out.push((m.name, (*total - *last_snapshot) as f64)),
                Value::Gauge(g) => out.push((m.name, *g)),
                Value::Histogram {
                    hist,
                    names,
                    sum,
                    n,
                } => {
                    Self::push_hist_entries(&mut out, hist, names, *sum, *n);
                }
            }
        }
        out
    }

    /// Serializes the full registry — names, kinds, counter totals and
    /// window baselines, gauge values, histogram buckets and window
    /// sums — into `out`, in registration order. The inverse is
    /// [`decode_state`](Self::decode_state).
    pub fn encode_state(&self, out: &mut ByteWriter) {
        out.put_usize(self.metrics.len());
        for m in &self.metrics {
            out.put_str(m.name);
            match &m.value {
                Value::Counter {
                    total,
                    last_snapshot,
                } => {
                    out.put_u8(0);
                    out.put_u64(*total);
                    out.put_u64(*last_snapshot);
                }
                Value::Gauge(g) => {
                    out.put_u8(1);
                    out.put_f64(*g);
                }
                Value::Histogram {
                    hist,
                    names,
                    sum,
                    n,
                } => {
                    out.put_u8(2);
                    out.put_str(names.p50);
                    out.put_str(names.p90);
                    out.put_str(names.p99);
                    out.put_str(names.p999);
                    let (counts, total, max) = hist.to_parts();
                    // Sparse: most of the ~1000 buckets are empty.
                    let nonzero = counts.iter().filter(|&&c| c != 0).count();
                    out.put_usize(counts.len());
                    out.put_usize(nonzero);
                    for (i, &c) in counts.iter().enumerate() {
                        if c != 0 {
                            out.put_usize(i);
                            out.put_u64(c);
                        }
                    }
                    out.put_u64(total);
                    out.put_u64(max);
                    out.put_f64(*sum);
                    out.put_u64(*n);
                }
            }
        }
    }

    /// Restores registry state captured by [`encode_state`]
    /// (Self::encode_state) into this registry.
    ///
    /// Import is by position: entries already registered (the machine
    /// re-registers its metrics during construction, in the same order
    /// as the captured run) must match the serialized name and kind and
    /// have their values overwritten; serialized entries beyond the
    /// current length — metrics a policy registered mid-run — are
    /// appended with interned names. After a successful decode the
    /// registry's registration order is identical to the uninterrupted
    /// run's, so snapshots and reports stay byte-identical.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), String> {
        let count = r.get_usize().map_err(|e| e.to_string())?;
        if count < self.metrics.len() {
            return Err(format!(
                "metrics registry snapshot has {count} entries but {} are already registered",
                self.metrics.len()
            ));
        }
        for i in 0..count {
            let name = r.get_str().map_err(|e| e.to_string())?;
            let tag = r.get_u8().map_err(|e| e.to_string())?;
            if let Some(m) = self.metrics.get(i) {
                if m.name != name {
                    return Err(format!(
                        "metrics registry mismatch at slot {i}: registered {:?}, snapshot has {name:?}",
                        m.name
                    ));
                }
            }
            match tag {
                0 => {
                    let total = r.get_u64().map_err(|e| e.to_string())?;
                    let last_snapshot = r.get_u64().map_err(|e| e.to_string())?;
                    let value = Value::Counter {
                        total,
                        last_snapshot,
                    };
                    self.restore_slot(i, name, value, 1)?;
                }
                1 => {
                    let g = r.get_f64().map_err(|e| e.to_string())?;
                    self.restore_slot(i, name, Value::Gauge(g), 1)?;
                }
                2 => {
                    let p50 = r.get_str().map_err(|e| e.to_string())?;
                    let p90 = r.get_str().map_err(|e| e.to_string())?;
                    let p99 = r.get_str().map_err(|e| e.to_string())?;
                    let p999 = r.get_str().map_err(|e| e.to_string())?;
                    let bucket_count = r.get_usize().map_err(|e| e.to_string())?;
                    let nonzero = r.get_usize().map_err(|e| e.to_string())?;
                    let mut counts = vec![0u64; bucket_count];
                    for _ in 0..nonzero {
                        let idx = r.get_usize().map_err(|e| e.to_string())?;
                        let c = r.get_u64().map_err(|e| e.to_string())?;
                        *counts.get_mut(idx).ok_or_else(|| {
                            format!("histogram {name:?}: bucket index {idx} out of range")
                        })? = c;
                    }
                    let total = r.get_u64().map_err(|e| e.to_string())?;
                    let max = r.get_u64().map_err(|e| e.to_string())?;
                    let sum = r.get_f64().map_err(|e| e.to_string())?;
                    let n = r.get_u64().map_err(|e| e.to_string())?;
                    let hist = LogHistogram::from_parts(counts, total, max)
                        .ok_or_else(|| format!("histogram {name:?}: inconsistent bucket state"))?;
                    let names = HistogramNames {
                        mean: intern(name),
                        p50: intern(p50),
                        p90: intern(p90),
                        p99: intern(p99),
                        p999: intern(p999),
                    };
                    let value = Value::Histogram {
                        hist,
                        names,
                        sum,
                        n,
                    };
                    self.restore_slot(i, name, value, HIST_ENTRIES)?;
                }
                other => return Err(format!("unknown metric kind tag {other}")),
            }
        }
        Ok(())
    }

    /// Overwrites slot `i`'s value (kind must match) or appends a new
    /// metric when `i` is one past the end.
    fn restore_slot(
        &mut self,
        i: usize,
        name: &str,
        value: Value,
        width: usize,
    ) -> Result<(), String> {
        match self.metrics.get_mut(i) {
            Some(m) => {
                let same_kind = matches!(
                    (&m.value, &value),
                    (Value::Counter { .. }, Value::Counter { .. })
                        | (Value::Gauge(_), Value::Gauge(_))
                        | (Value::Histogram { .. }, Value::Histogram { .. })
                );
                if !same_kind {
                    return Err(format!(
                        "metric {name:?}: snapshot kind differs from registered kind"
                    ));
                }
                m.value = value;
                Ok(())
            }
            None => {
                self.metrics.push(Metric {
                    name: intern(name),
                    value,
                });
                self.snapshot_width += width;
                Ok(())
            }
        }
    }

    /// Closes the current window: returns one entry per counter/gauge
    /// (counter delta, gauge value) and five per histogram (window
    /// mean, p50, p90, p99, p999), all in registration order, and
    /// resets per-window state.
    pub fn snapshot_window(&mut self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::with_capacity(self.snapshot_width);
        for m in &mut self.metrics {
            match &mut m.value {
                Value::Counter {
                    total,
                    last_snapshot,
                } => {
                    let delta = *total - *last_snapshot;
                    *last_snapshot = *total;
                    out.push((m.name, delta as f64));
                }
                Value::Gauge(g) => out.push((m.name, *g)),
                Value::Histogram {
                    hist,
                    names,
                    sum,
                    n,
                } => {
                    Self::push_hist_entries(&mut out, hist, names, *sum, *n);
                    hist.reset();
                    *sum = 0.0;
                    *n = 0;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static LATENCY: HistogramNames = HistogramNames {
        mean: "pebs/latency",
        p50: "pebs/latency_p50",
        p90: "pebs/latency_p90",
        p99: "pebs/latency_p99",
        p999: "pebs/latency_p999",
    };

    static H: HistogramNames = HistogramNames {
        mean: "h",
        p50: "h_p50",
        p90: "h_p90",
        p99: "h_p99",
        p999: "h_p999",
    };

    #[test]
    fn counters_snapshot_deltas() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("daemon/executed");
        r.inc(c, 3);
        r.inc(c, 2);
        assert_eq!(r.counter_total(c), 5);
        assert_eq!(r.snapshot_window(), vec![("daemon/executed", 5.0)]);
        r.inc(c, 1);
        assert_eq!(r.snapshot_window(), vec![("daemon/executed", 1.0)]);
        // Quiet window: delta is zero, total is preserved.
        assert_eq!(r.snapshot_window(), vec![("daemon/executed", 0.0)]);
        assert_eq!(r.counter_total(c), 6);
    }

    #[test]
    fn gauges_report_latest_value() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("queue/len");
        r.set(g, 10.0);
        r.set(g, 4.0);
        assert_eq!(r.snapshot_window(), vec![("queue/len", 4.0)]);
        // Gauges persist across windows.
        assert_eq!(r.snapshot_window(), vec![("queue/len", 4.0)]);
    }

    #[test]
    fn histograms_report_window_mean_quantiles_and_reset() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram(LATENCY);
        r.observe(h, 200.0);
        r.observe(h, 400.0);
        let snap = r.snapshot_window();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0], ("pebs/latency", 300.0));
        assert_eq!(snap[1].0, "pebs/latency_p50");
        // p50 of {200, 400} is the rank-1 bucket: within 1/16 of 200.
        assert!((200.0..=214.0).contains(&snap[1].1), "p50 = {}", snap[1].1);
        // The top quantiles land on the 400 observation's bucket.
        for &(k, v) in &snap[2..5] {
            assert!((400.0..=426.0).contains(&v), "{k} = {v}");
        }
        // Reset: an empty window reports 0 everywhere.
        let quiet = r.snapshot_window();
        assert_eq!(quiet.len(), 5);
        assert!(quiet.iter().all(|&(_, v)| v == 0.0), "{quiet:?}");
        assert_eq!(r.kind(h), MetricKind::Histogram);
    }

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        let b = r.gauge("b");
        let a2 = r.counter("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        r.inc(a, 1);
        r.set(b, 9.0);
        let snap = r.snapshot_window();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "b");
        assert_eq!(r.kind(a), MetricKind::Counter);
        assert_eq!(r.kind(b), MetricKind::Gauge);
        // Re-registering a histogram does not double its width.
        let h = r.histogram(H);
        let h2 = r.histogram(H);
        assert_eq!(h, h2);
        assert_eq!(r.snapshot_window().len(), 7);
    }

    #[test]
    fn peek_matches_snapshot_and_does_not_reset() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram(H);
        r.inc(c, 7);
        r.set(g, 2.5);
        r.observe(h, 4.0);
        r.observe(h, 8.0);
        let peek = r.peek_window();
        assert_eq!(peek, r.peek_window(), "peeking must not mutate");
        assert_eq!(peek, r.snapshot_window());
        // After the snapshot reset, a fresh peek sees the new window.
        let quiet = r.peek_window();
        assert_eq!(quiet[0], ("c", 0.0));
        assert_eq!(quiet[1], ("g", 2.5));
        assert_eq!(
            &quiet[2..],
            &[
                ("h", 0.0),
                ("h_p50", 0.0),
                ("h_p90", 0.0),
                ("h_p99", 0.0),
                ("h_p999", 0.0)
            ]
        );
    }

    #[test]
    fn snapshot_capacity_is_exact() {
        let mut r = MetricsRegistry::new();
        r.counter("c");
        r.gauge("g");
        r.histogram(H);
        let snap = r.snapshot_window();
        assert_eq!(snap.len(), 7);
        assert_eq!(snap.capacity(), 7, "snapshot must allocate exactly once");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        r.set(c, 1.0);
    }

    #[test]
    fn state_round_trips_into_a_rebuilt_registry() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram(H);
        r.inc(c, 12);
        r.snapshot_window(); // establish a non-zero counter baseline
        r.inc(c, 3);
        r.set(g, -1.25);
        r.observe(h, 100.0);
        r.observe(h, 5000.0);
        let mut w = pact_stats::ByteWriter::new();
        r.encode_state(&mut w);
        let bytes = w.into_bytes();
        // The resumed machine re-registers c and g during construction;
        // the policy-registered histogram is appended by the decode.
        let mut fresh = MetricsRegistry::new();
        fresh.counter("c");
        fresh.gauge("g");
        fresh
            .decode_state(&mut pact_stats::ByteReader::new(&bytes))
            .unwrap();
        assert_eq!(fresh.len(), r.len());
        assert_eq!(fresh.counter_total(c), 15);
        assert_eq!(fresh.peek_window(), r.peek_window());
        assert_eq!(fresh.snapshot_window(), r.snapshot_window());
        // Post-reset windows stay in lockstep too (snapshot_width and
        // histogram reset behave identically).
        assert_eq!(fresh.snapshot_window(), r.snapshot_window());
    }

    #[test]
    fn decode_rejects_mismatched_registration() {
        let mut r = MetricsRegistry::new();
        r.counter("c");
        let mut w = pact_stats::ByteWriter::new();
        r.encode_state(&mut w);
        let bytes = w.into_bytes();
        // Different name in slot 0.
        let mut other = MetricsRegistry::new();
        other.counter("different");
        let err = other
            .decode_state(&mut pact_stats::ByteReader::new(&bytes))
            .unwrap_err();
        assert!(err.contains("slot 0"), "{err}");
        // Same name, different kind.
        let mut gauge = MetricsRegistry::new();
        gauge.gauge("c");
        let err = gauge
            .decode_state(&mut pact_stats::ByteReader::new(&bytes))
            .unwrap_err();
        assert!(err.contains("kind"), "{err}");
        // More live registrations than the snapshot has.
        let mut extra = MetricsRegistry::new();
        extra.counter("c");
        extra.counter("d");
        assert!(extra
            .decode_state(&mut pact_stats::ByteReader::new(&bytes))
            .is_err());
        // Truncated payload.
        let mut ok = MetricsRegistry::new();
        ok.counter("c");
        assert!(ok
            .decode_state(&mut pact_stats::ByteReader::new(&bytes[..4]))
            .is_err());
    }
}
