//! Per-window metrics registry: named counters, gauges, and histograms
//! that substrate components register once and update cheaply.
//!
//! Registration happens at machine construction (a linear name lookup,
//! off the hot path); updates go through a dense [`MetricId`] index —
//! one bounds-checked array access, no hashing, no allocation. The
//! registry is snapshotted at every sampling-window boundary into the
//! window record: counters report their delta over the window, gauges
//! their current value, histograms the mean of values observed during
//! the window (and then reset). Snapshot order is registration order,
//! so reports are deterministic.

use pact_stats::Histogram;

/// Dense handle to a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count; snapshots report the per-window delta.
    Counter,
    /// Point-in-time value; snapshots report the latest set value.
    Gauge,
    /// Distribution of observed values; snapshots report the window
    /// mean and reset the distribution.
    Histogram,
}

#[derive(Debug, Clone)]
enum Value {
    Counter { total: u64, last_snapshot: u64 },
    Gauge(f64),
    Histogram { hist: Histogram, sum: f64, n: u64 },
}

#[derive(Debug, Clone)]
struct Metric {
    name: &'static str,
    value: Value,
}

/// The registry of named metrics for one machine run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &'static str, value: Value) -> MetricId {
        if let Some(i) = self.metrics.iter().position(|m| m.name == name) {
            return MetricId(i);
        }
        self.metrics.push(Metric { name, value });
        MetricId(self.metrics.len() - 1)
    }

    /// Registers (or finds) a counter named `name`.
    pub fn counter(&mut self, name: &'static str) -> MetricId {
        self.register(
            name,
            Value::Counter {
                total: 0,
                last_snapshot: 0,
            },
        )
    }

    /// Registers (or finds) a gauge named `name`.
    pub fn gauge(&mut self, name: &'static str) -> MetricId {
        self.register(name, Value::Gauge(0.0))
    }

    /// Registers (or finds) a fixed-width histogram named `name` over
    /// `[origin, origin + width · bins)` (see [`pact_stats::Histogram`]).
    pub fn histogram(
        &mut self,
        name: &'static str,
        origin: f64,
        width: f64,
        bins: usize,
    ) -> MetricId {
        self.register(
            name,
            Value::Histogram {
                hist: Histogram::new(origin, width, bins),
                sum: 0.0,
                n: 0,
            },
        )
    }

    /// Adds `by` to a counter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a counter.
    #[inline]
    pub fn inc(&mut self, id: MetricId, by: u64) {
        match &mut self.metrics[id.0].value {
            Value::Counter { total, .. } => *total += by,
            _ => panic!("metric is not a counter"),
        }
    }

    /// Sets a gauge to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a gauge.
    #[inline]
    pub fn set(&mut self, id: MetricId, v: f64) {
        match &mut self.metrics[id.0].value {
            Value::Gauge(g) => *g = v,
            _ => panic!("metric is not a gauge"),
        }
    }

    /// Records `v` into a histogram.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a histogram.
    #[inline]
    pub fn observe(&mut self, id: MetricId, v: f64) {
        match &mut self.metrics[id.0].value {
            Value::Histogram { hist, sum, n } => {
                hist.add(v);
                *sum += v;
                *n += 1;
            }
            _ => panic!("metric is not a histogram"),
        }
    }

    /// Current cumulative value of a counter.
    pub fn counter_total(&self, id: MetricId) -> u64 {
        match &self.metrics[id.0].value {
            Value::Counter { total, .. } => *total,
            _ => panic!("metric is not a counter"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry has no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Kind of a registered metric.
    pub fn kind(&self, id: MetricId) -> MetricKind {
        match &self.metrics[id.0].value {
            Value::Counter { .. } => MetricKind::Counter,
            Value::Gauge(_) => MetricKind::Gauge,
            Value::Histogram { .. } => MetricKind::Histogram,
        }
    }

    /// Non-mutating preview of what [`snapshot_window`] would return
    /// right now: one `(name, value)` per metric in registration order,
    /// with no per-window state reset. The invariant checker uses this
    /// to cross-check the snapshot actually embedded in a window record
    /// without perturbing the registry.
    ///
    /// [`snapshot_window`]: Self::snapshot_window
    pub fn peek_window(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::with_capacity(self.metrics.len());
        for m in &self.metrics {
            let v = match &m.value {
                Value::Counter {
                    total,
                    last_snapshot,
                } => (*total - *last_snapshot) as f64,
                Value::Gauge(g) => *g,
                Value::Histogram { sum, n, .. } => {
                    if *n == 0 {
                        0.0
                    } else {
                        *sum / *n as f64
                    }
                }
            };
            out.push((m.name, v));
        }
        out
    }

    /// Closes the current window: returns one `(name, value)` per
    /// metric in registration order (counter delta, gauge value,
    /// histogram window mean) and resets per-window state.
    pub fn snapshot_window(&mut self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::with_capacity(self.metrics.len());
        for m in &mut self.metrics {
            let v = match &mut m.value {
                Value::Counter {
                    total,
                    last_snapshot,
                } => {
                    let delta = *total - *last_snapshot;
                    *last_snapshot = *total;
                    delta as f64
                }
                Value::Gauge(g) => *g,
                Value::Histogram { hist, sum, n } => {
                    let mean = if *n == 0 { 0.0 } else { *sum / *n as f64 };
                    hist.reset();
                    *sum = 0.0;
                    *n = 0;
                    mean
                }
            };
            out.push((m.name, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_deltas() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("daemon/executed");
        r.inc(c, 3);
        r.inc(c, 2);
        assert_eq!(r.counter_total(c), 5);
        assert_eq!(r.snapshot_window(), vec![("daemon/executed", 5.0)]);
        r.inc(c, 1);
        assert_eq!(r.snapshot_window(), vec![("daemon/executed", 1.0)]);
        // Quiet window: delta is zero, total is preserved.
        assert_eq!(r.snapshot_window(), vec![("daemon/executed", 0.0)]);
        assert_eq!(r.counter_total(c), 6);
    }

    #[test]
    fn gauges_report_latest_value() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("queue/len");
        r.set(g, 10.0);
        r.set(g, 4.0);
        assert_eq!(r.snapshot_window(), vec![("queue/len", 4.0)]);
        // Gauges persist across windows.
        assert_eq!(r.snapshot_window(), vec![("queue/len", 4.0)]);
    }

    #[test]
    fn histograms_report_window_mean_and_reset() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("pebs/latency", 0.0, 100.0, 16);
        r.observe(h, 200.0);
        r.observe(h, 400.0);
        assert_eq!(r.snapshot_window(), vec![("pebs/latency", 300.0)]);
        // Reset: an empty window reports 0.
        assert_eq!(r.snapshot_window(), vec![("pebs/latency", 0.0)]);
        assert_eq!(r.kind(h), MetricKind::Histogram);
    }

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        let b = r.gauge("b");
        let a2 = r.counter("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        r.inc(a, 1);
        r.set(b, 9.0);
        let snap = r.snapshot_window();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "b");
        assert_eq!(r.kind(a), MetricKind::Counter);
        assert_eq!(r.kind(b), MetricKind::Gauge);
    }

    #[test]
    fn peek_matches_snapshot_and_does_not_reset() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h", 0.0, 10.0, 4);
        r.inc(c, 7);
        r.set(g, 2.5);
        r.observe(h, 4.0);
        r.observe(h, 8.0);
        let peek = r.peek_window();
        assert_eq!(peek, r.peek_window(), "peeking must not mutate");
        assert_eq!(peek, r.snapshot_window());
        // After the snapshot reset, a fresh peek sees the new window.
        assert_eq!(r.peek_window(), vec![("c", 0.0), ("g", 2.5), ("h", 0.0)]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        r.set(c, 1.0);
    }
}
