//! Host-side hierarchical span profiler for the simulator's own
//! phases (window loop, shard merge, CHMU replay, policy step).
//!
//! # The dual-clock rule
//!
//! This module is the **only** sanctioned wall-clock reader among the
//! deterministic crates: pact-lint's D002 (`det-wall-clock`) allowlists
//! exactly this file and keeps firing everywhere else. The discipline
//! that makes this safe is one-directional data flow — spans *read*
//! the host clock but never write anything the simulation can observe:
//! no sim state, no metrics registry, no tracer events, no report
//! fields. Host profiles are explicitly nondeterministic (they measure
//! this machine, this run) and must never feed a deterministic
//! artifact; `pact-check` carries an oracle pinning that enabling the
//! profiler leaves every sim-domain byte unchanged.
//!
//! # Use
//!
//! Profiling is off by default and costs one relaxed atomic load per
//! [`span`] call — no allocation, no time read — so instrumentation
//! can sit on warm paths. Binaries opt in from `PACT_PROF=1` via
//! [`set_enabled`]; RAII [`Span`] guards time a region and record into
//! a global, process-wide profile keyed by the `;`-joined path of
//! enclosing span names (each thread tracks its own stack; totals
//! merge across threads).
//!
//! ```
//! pact_obs::hostprof::set_enabled(true);
//! {
//!     let _w = pact_obs::hostprof::span("window");
//!     let _m = pact_obs::hostprof::span("shard_merge");
//! } // both spans record on drop
//! let text = pact_obs::hostprof::summary();
//! assert!(text.contains("window;shard_merge"));
//! pact_obs::hostprof::set_enabled(false);
//! pact_obs::hostprof::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall time inside the span, in nanoseconds (inclusive of
    /// child spans).
    pub total_ns: u128,
}

fn profile() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static PROFILE: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    PROFILE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Turns profiling on or off process-wide. Spans opened while disabled
/// never record, even if profiling is enabled before they drop.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discards all recorded span statistics.
pub fn reset() {
    if let Ok(mut map) = profile().lock() {
        map.clear();
    }
}

/// Opens a span named `name`. Returns a guard that records the span's
/// wall time when dropped. When profiling is disabled this is a single
/// atomic load and the guard is inert.
#[must_use = "the span records on drop; binding it to _ ends it immediately"]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span {
        start: Some(Instant::now()),
    }
}

/// RAII guard for one span occurrence (see [`span`]).
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let elapsed = start.elapsed().as_nanos();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join(";");
            stack.pop();
            path
        });
        if let Ok(mut map) = profile().lock() {
            let stat = map.entry(path).or_default();
            stat.count += 1;
            stat.total_ns += elapsed;
        }
    }
}

/// A copy of the recorded profile: `(path, stat)` pairs in path order.
pub fn snapshot() -> Vec<(String, SpanStat)> {
    match profile().lock() {
        Ok(map) => map.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        Err(_) => Vec::new(),
    }
}

/// Renders the profile as an aligned text table (path, call count,
/// total and mean wall time), one line per span path, paths sorted.
/// Empty string when nothing was recorded.
pub fn summary() -> String {
    let snap = snapshot();
    if snap.is_empty() {
        return String::new();
    }
    let width = snap.iter().map(|(p, _)| p.len()).max().unwrap_or(0).max(4);
    let mut out = format!(
        "{:width$}  {:>10}  {:>12}  {:>12}\n",
        "span", "calls", "total_ms", "mean_us"
    );
    for (path, stat) in &snap {
        let total_ms = stat.total_ns as f64 / 1e6;
        let mean_us = if stat.count == 0 {
            0.0
        } else {
            stat.total_ns as f64 / stat.count as f64 / 1e3
        };
        out.push_str(&format!(
            "{path:width$}  {:>10}  {total_ms:>12.3}  {mean_us:>12.3}\n",
            stat.count
        ));
    }
    out
}

/// Renders the profile in collapsed-stack ("folded") format with
/// nanosecond sample counts, suitable for flamegraph tooling. The
/// numbers are host wall times — nondeterministic by nature — so this
/// artifact must never be byte-compared or mixed into sim output.
pub fn folded() -> String {
    let mut f = crate::attribution::FoldedStacks::new();
    for (path, stat) in snapshot() {
        let frames: Vec<&str> = path.split(';').collect();
        // Invariant: paths are ';'-joined non-empty names, so the
        // split is non-empty and frames carry no delimiters.
        f.line(&frames, stat.total_ns.min(u128::from(u64::MAX)) as u64);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global state, so everything is exercised
    // in one test to avoid cross-test interference under the parallel
    // test runner.
    #[test]
    fn spans_record_only_when_enabled_and_nest_into_paths() {
        reset();
        set_enabled(false);
        {
            let _s = span("disabled_root");
        }
        assert!(
            !snapshot().iter().any(|(p, _)| p.contains("disabled_root")),
            "disabled spans must not record"
        );

        set_enabled(true);
        {
            let _outer = span("hp_outer");
            for _ in 0..3 {
                let _inner = span("hp_inner");
            }
        }
        set_enabled(false);

        let snap = snapshot();
        let inner = snap
            .iter()
            .find(|(p, _)| p == "hp_outer;hp_inner")
            .expect("nested path recorded");
        assert_eq!(inner.1.count, 3);
        let outer = snap
            .iter()
            .find(|(p, _)| p == "hp_outer")
            .expect("root path recorded");
        assert_eq!(outer.1.count, 1);
        assert!(
            outer.1.total_ns >= inner.1.total_ns,
            "parent time includes children"
        );

        let text = summary();
        assert!(text.contains("hp_outer;hp_inner"));
        assert!(text.contains("calls"));
        let flame = folded();
        assert!(flame.contains("hp_outer;hp_inner "));

        reset();
        assert!(!snapshot().iter().any(|(p, _)| p.starts_with("hp_")));
        assert_eq!(summary(), "");
    }
}
