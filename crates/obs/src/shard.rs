//! Deterministic merge of per-shard event runs.
//!
//! The sharded event loop (DESIGN.md §12) buffers page-keyed events —
//! CHMU observations, stall attributions, telemetry rows — into one
//! buffer per shard instead of applying them at the access site. At
//! every merge point (window boundaries and any read of merged state)
//! the runs are combined by this module, which is what makes the shard
//! count invisible in output bytes:
//!
//! * [`merge_runs`] reconstructs the exact *global* event order from a
//!   per-event sequence number, for order-dependent consumers (the
//!   Space-Saving CHMU table inherits eviction counts, so observation
//!   order matters).
//! * [`drain_in_shard_order`] visits buffers in fixed shard order
//!   `0..P`, for order-*independent* (commutative) consumers such as
//!   additive stall attribution, where any fixed order is correct and
//!   shard order is the cheapest deterministic one.

/// Maximum shard count the merge helpers support. The event loop's
/// `shards` config validates against this bound (its cursor state
/// lives on the stack so merging never allocates — see
/// `tiersim/tests/window_alloc.rs`).
pub const MAX_SHARDS: usize = 256;

/// Merges per-shard `(seq, payload)` runs into `out`, ordered by the
/// global sequence number `seq`; the shard buffers are drained (left
/// empty with capacity retained) and `out` is cleared first.
///
/// Each shard buffer must be internally sorted by `seq` ascending,
/// which holds by construction when events are appended in program
/// order and `seq` comes from one global counter. Sequence numbers
/// across shards are disjoint (one counter), so the merged order is
/// total and the merge reproduces the serial event order exactly —
/// independent of shard count or partition function.
///
/// # Panics
///
/// Panics if more than [`MAX_SHARDS`] runs are passed.
pub fn merge_runs<T: Copy>(shards: &mut [Vec<(u64, T)>], out: &mut Vec<(u64, T)>) {
    assert!(
        shards.len() <= MAX_SHARDS,
        "merge_runs supports at most {MAX_SHARDS} shards"
    );
    out.clear();
    let total: usize = shards.iter().map(Vec::len).sum();
    if total == 0 {
        return;
    }
    out.reserve(total);
    // K-way merge over cursor positions; shard counts are small
    // (≤ MAX_SHARDS) so a linear scan of the heads beats heap
    // bookkeeping, and the cursors fit on the stack — this runs at
    // every window edge and must not allocate.
    let mut cursor = [0usize; MAX_SHARDS];
    for _ in 0..total {
        let mut best: Option<(u64, usize)> = None;
        for (si, run) in shards.iter().enumerate() {
            if let Some(&(seq, _)) = run.get(cursor[si]) {
                if best.is_none_or(|(bseq, _)| seq < bseq) {
                    best = Some((seq, si));
                }
            }
        }
        // Invariant: `total` counts exactly the un-consumed entries, so
        // a head always exists inside this loop.
        let (_, si) = best.expect("a run head remains");
        out.push(shards[si][cursor[si]]);
        cursor[si] += 1;
    }
    for run in shards.iter_mut() {
        run.clear();
    }
}

/// Drains every shard buffer in fixed shard order `0..P`, feeding each
/// item to `apply`. Buffers keep their capacity. Only correct for
/// commutative consumers (sums, set-unions); order-dependent state must
/// go through [`merge_runs`].
pub fn drain_in_shard_order<T, F: FnMut(T)>(shards: &mut [Vec<T>], mut apply: F) {
    for run in shards.iter_mut() {
        for item in run.drain(..) {
            apply(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_reconstructs_global_order() {
        // Events 0..12 scattered across 3 shards by an arbitrary key.
        let mut shards: Vec<Vec<(u64, u32)>> = vec![Vec::new(); 3];
        for seq in 0..12u64 {
            shards[(seq % 3) as usize].push((seq, seq as u32 * 10));
        }
        let mut out = Vec::new();
        merge_runs(&mut shards, &mut out);
        let seqs: Vec<u64> = out.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, (0..12).collect::<Vec<_>>());
        assert!(shards.iter().all(Vec::is_empty));
    }

    #[test]
    fn merge_is_partition_independent() {
        let events: Vec<(u64, u64)> = (0..40).map(|s| (s, s * s)).collect();
        let mut merged = Vec::new();
        for parts in [1usize, 2, 5, 7] {
            let mut shards: Vec<Vec<(u64, u64)>> = vec![Vec::new(); parts];
            for &(seq, v) in &events {
                shards[(v % parts as u64) as usize].push((seq, v));
            }
            let mut out = Vec::new();
            merge_runs(&mut shards, &mut out);
            if merged.is_empty() {
                merged = out;
            } else {
                assert_eq!(merged, out, "partition into {parts} diverged");
            }
        }
        assert_eq!(merged, events);
    }

    #[test]
    fn merge_reuses_capacity() {
        let mut shards: Vec<Vec<(u64, u8)>> = vec![vec![(0, 1)], vec![(1, 2)]];
        let caps: Vec<usize> = shards.iter().map(Vec::capacity).collect();
        let mut out = Vec::new();
        merge_runs(&mut shards, &mut out);
        assert_eq!(out, vec![(0, 1), (1, 2)]);
        for (run, cap) in shards.iter().zip(caps) {
            assert!(run.is_empty() && run.capacity() >= cap);
        }
        // Empty merge keeps `out` usable and allocation-free.
        merge_runs(&mut shards, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn merge_of_an_empty_run_set_clears_out() {
        // Edge: no shards at all — `out` must still be cleared, not
        // left holding a previous merge's events.
        let mut shards: Vec<Vec<(u64, u32)>> = Vec::new();
        let mut out = vec![(99u64, 1u32)];
        merge_runs(&mut shards, &mut out);
        assert!(out.is_empty());
        // Edge: shards present but all empty behaves the same.
        let mut shards: Vec<Vec<(u64, u32)>> = vec![Vec::new(); 4];
        out.push((7, 7));
        merge_runs(&mut shards, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn merge_of_a_single_run_is_the_identity() {
        let events: Vec<(u64, u32)> = (0..9u64).map(|s| (s, s as u32 + 100)).collect();
        let mut shards = vec![events.clone()];
        let mut out = Vec::new();
        merge_runs(&mut shards, &mut out);
        assert_eq!(out, events);
        assert!(shards[0].is_empty());
    }

    #[test]
    fn merge_with_all_equal_sequence_numbers_is_first_shard_wins() {
        // The engine's one-global-counter invariant makes cross-shard
        // seq ties impossible, but the merge itself must still be
        // deterministic if fed them: the head scan takes the strictly
        // smaller seq, so ties resolve to the lowest shard index.
        let mut shards = vec![vec![(5u64, 'a'), (5, 'b')], vec![(5, 'c')], vec![(5, 'd')]];
        let mut out = Vec::new();
        merge_runs(&mut shards, &mut out);
        let payloads: Vec<char> = out.iter().map(|&(_, p)| p).collect();
        assert_eq!(payloads, vec!['a', 'b', 'c', 'd']);
        // And repeatably so.
        let mut shards = vec![vec![(5u64, 'a'), (5, 'b')], vec![(5, 'c')], vec![(5, 'd')]];
        let mut again = Vec::new();
        merge_runs(&mut shards, &mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn drain_visits_fixed_shard_order() {
        let mut shards = vec![vec![1, 2], vec![], vec![3]];
        let mut seen = Vec::new();
        drain_in_shard_order(&mut shards, |v| seen.push(v));
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(shards.iter().all(Vec::is_empty));
    }
}
