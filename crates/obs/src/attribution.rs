//! Attribution building blocks: collapsed-stack ("folded") flamegraph
//! output and deterministic top-K selection.
//!
//! The folded format is Brendan Gregg's `flamegraph.pl` input: one
//! stack per line, frames joined by `;`, a space, then the sample
//! count —
//!
//! ```text
//! slow;huge#0;page#17 4242
//! ```
//!
//! This module is domain-agnostic: callers (the simulator's
//! criticality report, the host self-profiler) supply the frames.
//! Output bytes are exactly the lines pushed, in push order — feeding
//! lines from an ordered map makes the artifact deterministic.

/// Builder for collapsed-stack flamegraph text.
#[derive(Debug, Clone, Default)]
pub struct FoldedStacks {
    buf: String,
}

impl FoldedStacks {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one stack line: `frame;frame;frame count`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or a frame contains `;`, a space,
    /// or a newline (these would corrupt the format).
    pub fn line(&mut self, frames: &[&str], count: u64) {
        assert!(
            !frames.is_empty(),
            "a folded stack needs at least one frame"
        );
        for (i, f) in frames.iter().enumerate() {
            assert!(
                !f.contains([';', ' ', '\n']),
                "frame {f:?} contains a folded-format delimiter"
            );
            if i > 0 {
                self.buf.push(';');
            }
            self.buf.push_str(f);
        }
        self.buf.push(' ');
        self.buf.push_str(&count.to_string());
        self.buf.push('\n');
    }

    /// The text so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Whether no lines have been pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the builder, returning the folded text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// The `k` heaviest `(key, weight)` pairs, ordered by weight
/// descending with ties broken by key ascending — a total order, so
/// the selection is deterministic regardless of input order.
pub fn top_k_desc<K: Ord + Copy>(
    items: impl IntoIterator<Item = (K, u64)>,
    k: usize,
) -> Vec<(K, u64)> {
    let mut v: Vec<(K, u64)> = items.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_lines_render_the_gregg_format() {
        let mut f = FoldedStacks::new();
        f.line(&["slow", "huge#0", "page#17"], 4242);
        f.line(&["fast", "huge#512", "page#513"], 1);
        assert_eq!(
            f.as_str(),
            "slow;huge#0;page#17 4242\nfast;huge#512;page#513 1\n"
        );
        assert!(!f.is_empty());
        assert_eq!(f.clone().finish(), f.as_str());
    }

    #[test]
    #[should_panic(expected = "delimiter")]
    fn frames_with_delimiters_are_rejected() {
        FoldedStacks::new().line(&["a;b"], 1);
    }

    #[test]
    fn top_k_orders_by_weight_then_key() {
        let items = [(3u64, 10), (1, 20), (2, 10), (4, 5)];
        assert_eq!(top_k_desc(items, 3), vec![(1, 20), (2, 10), (3, 10)]);
        // k beyond the population returns everything, still ordered.
        assert_eq!(top_k_desc(items, 99).len(), 4);
        // Deterministic under permutation.
        let mut rev = items;
        rev.reverse();
        assert_eq!(top_k_desc(rev, 3), top_k_desc(items, 3));
        assert!(top_k_desc(std::iter::empty::<(u64, u64)>(), 5).is_empty());
    }
}
