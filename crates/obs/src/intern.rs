//! `&'static str` interning for snapshot restore.
//!
//! Trace events and metric names carry `&'static str` labels. In a
//! normal run those are string literals; a run restored from a
//! crash-recovery snapshot has to reconstruct them from serialized
//! bytes. [`intern`] leaks each distinct string once into a
//! process-global table and hands back the `'static` reference, so a
//! restored run's labels compare and export exactly like the
//! originals. The table is append-only and searched linearly — the set
//! of distinct labels is tiny (metric names, telemetry keys, fault
//! class names) and restore runs once per process, so determinism and
//! simplicity beat lookup speed here.

use std::sync::Mutex;

static TABLE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Returns a `'static` string equal to `s`, leaking at most one copy
/// per distinct value for the life of the process.
pub fn intern(s: &str) -> &'static str {
    // Invariant: the interner mutex is never poisoned — no code path
    // inside the critical section can panic.
    let mut table = TABLE.lock().unwrap();
    if let Some(&hit) = table.iter().find(|&&t| t == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_each_distinct_string_once() {
        let a = intern("snapshot/test/alpha");
        let b = intern("snapshot/test/alpha");
        assert_eq!(a, "snapshot/test/alpha");
        // Same pointer: the second call found the first entry.
        assert!(std::ptr::eq(a, b));
        let c = intern("snapshot/test/beta");
        assert_eq!(c, "snapshot/test/beta");
        assert!(!std::ptr::eq(a, c));
    }
}
