//! Dependency-free JSON writing and validation.
//!
//! The figure binaries and exporters all need to emit machine-readable
//! output without pulling `serde` into the hermetic build, and the CI
//! smoke step needs to *check* that emitted traces parse. This module
//! provides both halves: a push-style [`JsonWriter`] with escaping and
//! deterministic number formatting, and a small recursive-descent
//! [`validate`] that accepts exactly the JSON grammar.
//!
//! Determinism notes: integers are written exactly; `f64` uses Rust's
//! shortest-roundtrip `Display`, which is platform-independent;
//! non-finite floats are written as `null` (JSON has no NaN/Inf).

/// A push-style JSON serializer over an owned `String`.
///
/// Structure errors (closing an unopened array, two keys in a row) are
/// programming bugs and panic in debug builds via `debug_assert`; the
/// writer never produces invalid JSON from valid call sequences.
///
/// # Example
///
/// ```
/// use pact_obs::JsonWriter;
/// let mut j = JsonWriter::new();
/// j.begin_object();
/// j.field_str("name", "pact");
/// j.field_u64("cycles", 42);
/// j.key("ratios");
/// j.begin_array();
/// j.value_f64(0.5);
/// j.end_array();
/// j.end_object();
/// assert_eq!(j.finish(), r#"{"name":"pact","cycles":42,"ratios":[0.5]}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once it has a member (so
    /// the next member needs a comma).
    stack: Vec<bool>,
    /// A key was just written; the next value completes the pair.
    pending_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer and returns the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed container");
        self.buf
    }

    /// The text produced so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_member) = self.stack.last_mut() {
            if *has_member {
                self.buf.push(',');
            }
            *has_member = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.stack.push(false);
        self.buf.push('{');
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        // The pop must stay outside debug_assert!: release builds
        // compile the macro out, side effects included.
        let open = self.stack.pop();
        debug_assert!(open.is_some(), "no open container");
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.stack.push(false);
        self.buf.push('[');
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        let open = self.stack.pop();
        debug_assert!(open.is_some(), "no open container");
        self.buf.push(']');
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, k: &str) {
        debug_assert!(!self.pending_key, "two keys in a row");
        self.before_value();
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        write_escaped(&mut self.buf, v);
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.before_value();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a float value (`null` for NaN/Inf, which JSON lacks).
    pub fn value_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            let s = v.to_string();
            self.buf.push_str(&s);
            // `5.0f64.to_string()` is "5"; that is still valid JSON.
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn value_null(&mut self) {
        self.before_value();
        self.buf.push_str("null");
    }

    /// Key + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// Key + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// Key + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
    }

    /// Key + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.value_bool(v);
    }
}

fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Where and why [`validate`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Checks that `s` is one well-formed JSON value (with nothing but
/// whitespace after it). Structure-only: no value is materialized.
///
/// # Errors
///
/// Returns the first syntax error found.
pub fn validate(s: &str) -> Result<(), JsonError> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing content"));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.i,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), JsonError> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), JsonError> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                Err(p.err("expected digits"))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_containers_still_separate_siblings() {
        // Regression: end_object/end_array once popped the container
        // stack inside debug_assert!, so release builds never popped
        // and the member after an empty container lost its comma.
        let mut j = JsonWriter::new();
        j.begin_object();
        j.key("t");
        j.begin_object();
        j.end_object();
        j.key("a");
        j.begin_array();
        j.end_array();
        j.field_u64("n", 1);
        j.end_object();
        let s = j.finish();
        assert_eq!(s, r#"{"t":{},"a":[],"n":1}"#);
        validate(&s).unwrap();
    }

    #[test]
    fn writer_builds_nested_structures() {
        let mut j = JsonWriter::new();
        j.begin_object();
        j.field_str("policy", "pact");
        j.field_u64("cycles", 12345);
        j.field_f64("slowdown", 0.26);
        j.field_bool("thp", false);
        j.key("windows");
        j.begin_array();
        for i in 0..2u64 {
            j.begin_object();
            j.field_u64("index", i);
            j.end_object();
        }
        j.end_array();
        j.key("nothing");
        j.value_null();
        j.end_object();
        let s = j.finish();
        assert_eq!(
            s,
            r#"{"policy":"pact","cycles":12345,"slowdown":0.26,"thp":false,"windows":[{"index":0},{"index":1}],"nothing":null}"#
        );
        validate(&s).unwrap();
    }

    #[test]
    fn writer_escapes_strings() {
        let mut j = JsonWriter::new();
        j.value_str("a\"b\\c\nd\te\u{1}");
        let s = j.finish();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        validate(&s).unwrap();
    }

    #[test]
    fn writer_handles_nonfinite_floats() {
        let mut j = JsonWriter::new();
        j.begin_array();
        j.value_f64(f64::NAN);
        j.value_f64(f64::INFINITY);
        j.value_f64(1.5);
        j.value_f64(5.0); // integral float prints without a dot
        j.end_array();
        let s = j.finish();
        assert_eq!(s, "[null,null,1.5,5]");
        validate(&s).unwrap();
    }

    #[test]
    fn validator_accepts_valid_json() {
        for ok in [
            "null",
            "true",
            "  -12.5e+3 ",
            r#""hié""#,
            "[]",
            "{}",
            r#"{"a":[1,2,{"b":null}],"c":"d"}"#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "[1] tail",
            "01x",
            "{\"a\":1,}",
            "\"bad\\q\"",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
        let e = validate("[1, oops]").unwrap_err();
        assert!(e.to_string().contains("invalid JSON at byte"));
    }
}
