//! # pact-obs — deterministic tracing and metrics for the PACT substrate
//!
//! The paper's evaluation lives on visibility into the simulated
//! machine: CHA/TOR occupancy, PEBS batches, migration-daemon
//! behaviour, per-window policy telemetry (Figs 2, 8, 9, 11). This
//! crate is the observability layer every other crate threads through:
//!
//! * [`Tracer`] — a preallocated ring buffer of typed, sim-cycle
//!   stamped [`TraceEvent`]s (window boundaries, migration order
//!   issued/completed/dropped, promotion rejections, channel-saturation
//!   episodes, PEBS sample batches, policy telemetry). A disabled
//!   tracer never allocates and compiles to a single branch on the hot
//!   path.
//! * [`MetricsRegistry`] — named counters, gauges, and histograms
//!   (reusing `pact-stats` histograms) that the machine, channels,
//!   CHMU, migration daemon, and policies register into; snapshotted at
//!   every sampling window.
//! * [`export`] — Chrome-trace JSON (open in `chrome://tracing` or
//!   Perfetto) and JSONL exporters, selected at runtime via the
//!   `PACT_TRACE` / `PACT_TRACE_FORMAT` environment variables.
//! * [`json`] — the dependency-free JSON writer/validator the
//!   exporters and figure binaries share.
//! * [`shard`] — deterministic merge of per-shard event runs for the
//!   sharded event loop: sequence-ordered k-way merge for
//!   order-dependent consumers, fixed-shard-order drain for
//!   commutative ones.
//! * [`attribution`] — collapsed-stack ("folded") flamegraph text and
//!   deterministic top-K selection, the building blocks of the
//!   criticality report (DESIGN.md §13).
//! * [`hostprof`] — the host-side span profiler, the one sanctioned
//!   wall-clock reader in the deterministic crates. Host profiles time
//!   the simulator itself and never feed sim-domain artifacts.
//!
//! Determinism is load-bearing: events carry only simulation state
//! (cycles, pages, counters — never wall-clock time or addresses of
//! host objects), so two runs of the same seed emit byte-identical
//! traces regardless of host, thread count, or scheduling. The
//! integration tests pin this.

#![warn(missing_docs)]

pub mod attribution;
pub mod export;
pub mod hostprof;
mod intern;
pub mod json;
mod metrics;
pub mod shard;
mod tracer;

pub use attribution::{top_k_desc, FoldedStacks};
pub use export::{
    chrome_trace, jsonl, TraceConfig, TraceFormat, WindowRow, TRACE_ENV, TRACE_FORMAT_ENV,
};
pub use intern::intern;
pub use json::{validate, JsonError, JsonWriter};
pub use metrics::{HistogramNames, MetricId, MetricKind, MetricsRegistry};
pub use tracer::{EventKind, TraceEvent, Tracer, DEFAULT_RING_CAPACITY};
