//! Structured event tracing: a preallocated ring buffer of typed,
//! sim-cycle-stamped simulator events.
//!
//! The tracer is designed around two constraints:
//!
//! 1. **Determinism.** Events carry only simulation state — cycles,
//!    page numbers, counter values. No wall-clock time, no host
//!    pointers, no iteration order over hash maps. Two runs of the same
//!    seed produce the same event sequence, byte for byte after export.
//! 2. **Zero cost when off.** [`Tracer::disabled`] allocates nothing
//!    and [`Tracer::emit`] reduces to one predictable branch, so the
//!    simulator hot path can emit unconditionally.
//!
//! When the ring fills, the oldest events are overwritten (and
//! counted), which bounds memory for arbitrarily long runs while
//! keeping the most recent — usually most interesting — history.

/// Tier index used by events (`0 = fast`, `1 = slow`); avoids a
/// dependency on `pact-tiersim`, which sits above this crate.
pub type TierIdx = u8;

/// One recorded simulator event, stamped with the machine cycle at
/// which it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The typed simulator events the substrate emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A sampling-window boundary fired, with the window's migration
    /// and queue-pressure activity.
    WindowBoundary {
        /// Zero-based window index.
        index: u64,
        /// Base pages promoted during the window.
        promotions: u64,
        /// Base pages demoted during the window.
        demotions: u64,
        /// Promotions rejected for lack of fast-tier space.
        failed_promotions: u64,
        /// Orders dropped on daemon-queue overflow.
        dropped_orders: u64,
    },
    /// A policy issued a migration order.
    OrderIssued {
        /// Global page number of the unit to migrate.
        page: u64,
        /// Destination tier index.
        to: TierIdx,
        /// Whether the triggering thread pays the migration cost.
        sync: bool,
    },
    /// A migration order was executed.
    OrderCompleted {
        /// Global page number of the migrated unit.
        page: u64,
        /// Destination tier index.
        to: TierIdx,
        /// Base pages moved.
        moved: u64,
    },
    /// A migration order was dropped because the daemon queue was full.
    OrderDropped {
        /// Global page number of the unit that was not migrated.
        page: u64,
        /// Intended destination tier index.
        to: TierIdx,
    },
    /// A promotion failed because the fast tier had no space.
    PromotionRejected {
        /// Global page number of the rejected unit.
        page: u64,
    },
    /// A memory channel's backlog crossed into saturation.
    ChannelSaturated {
        /// Saturated tier index.
        tier: TierIdx,
        /// Backlog at detection, in cycles of channel time.
        backlog_cycles: u64,
    },
    /// A previously saturated channel drained below the threshold.
    ChannelRecovered {
        /// Recovered tier index.
        tier: TierIdx,
        /// Length of the saturation episode in cycles.
        episode_cycles: u64,
    },
    /// The window's batch of delivered samples (PEBS + hint faults).
    SampleBatch {
        /// PEBS samples delivered during the window.
        pebs: u64,
        /// Hint faults taken during the window.
        hint_faults: u64,
    },
    /// A named value the policy reported for this window.
    PolicyTelemetry {
        /// Telemetry key (policy-defined, e.g. `"bin_width"`).
        key: &'static str,
        /// Reported value.
        value: f64,
    },
    /// The fault-injection layer fired a fault.
    FaultInjected {
        /// Stable fault-class name (e.g. `"order_drop"`,
        /// `"migration_fail"`, `"channel_stall"`, `"pebs_loss"`,
        /// `"chmu_overflow"`).
        kind: &'static str,
        /// Class-specific argument: the affected page for migration and
        /// sampling faults, booked lines for channel stalls.
        arg: u64,
    },
    /// A transiently failed migration order was requeued for retry.
    OrderRetried {
        /// Global page number of the retried unit.
        page: u64,
        /// Destination tier index.
        to: TierIdx,
        /// 1-based retry attempt.
        attempt: u32,
    },
}

impl EventKind {
    /// Stable lowercase name of the event type, used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::WindowBoundary { .. } => "window",
            EventKind::OrderIssued { .. } => "order_issued",
            EventKind::OrderCompleted { .. } => "order_completed",
            EventKind::OrderDropped { .. } => "order_dropped",
            EventKind::PromotionRejected { .. } => "promotion_rejected",
            EventKind::ChannelSaturated { .. } => "channel_saturated",
            EventKind::ChannelRecovered { .. } => "channel_recovered",
            EventKind::SampleBatch { .. } => "sample_batch",
            EventKind::PolicyTelemetry { .. } => "policy_telemetry",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::OrderRetried { .. } => "order_retried",
        }
    }
}

/// Human-readable tier name for a [`TierIdx`].
pub(crate) fn tier_name(t: TierIdx) -> &'static str {
    if t == 0 {
        "fast"
    } else {
        "slow"
    }
}

/// A bounded, preallocated event sink.
///
/// Construct with [`Tracer::ring`] to record (capacity fixed up
/// front), or [`Tracer::disabled`] for a no-op sink that never
/// allocates. The simulator emits into either unconditionally.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    /// Ring head: index of the oldest event once the buffer has wrapped.
    head: usize,
    overwritten: u64,
}

/// Default ring capacity: enough for every window event of a
/// paper-scale run plus a dense migration phase, at ~40 B/event.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

impl Tracer {
    /// A disabled sink: no allocation, `emit` is a single branch.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            cap: 0,
            events: Vec::new(),
            head: 0,
            overwritten: 0,
        }
    }

    /// An enabled sink with a preallocated ring of `capacity` events
    /// (at least 1). When full, the oldest events are overwritten.
    pub fn ring(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            enabled: true,
            cap,
            events: Vec::with_capacity(cap),
            head: 0,
            overwritten: 0,
        }
    }

    /// Whether this sink records events.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op on a disabled sink).
    #[inline(always)]
    pub fn emit(&mut self, cycle: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent { cycle, kind });
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten after the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Ring capacity (0 for a disabled sink).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The held events in chronological (emission) order.
    pub fn events_in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_never_allocates() {
        let mut t = Tracer::disabled();
        for i in 0..10_000 {
            t.emit(i, EventKind::PromotionRejected { page: i });
        }
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 0);
        // The backing vector must not have grown: zero capacity means
        // zero heap allocation for the event buffer.
        assert_eq!(t.events.capacity(), 0);
        assert_eq!(t.overwritten(), 0);
    }

    #[test]
    fn ring_preserves_order_and_overwrites_oldest() {
        let mut t = Tracer::ring(4);
        for i in 0..6u64 {
            t.emit(i, EventKind::PromotionRejected { page: i });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.overwritten(), 2);
        let cycles: Vec<u64> = t.events_in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4, 5]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut t = Tracer::ring(16);
        for i in 0..5u64 {
            t.emit(
                i * 100,
                EventKind::SampleBatch {
                    pebs: i,
                    hint_faults: 0,
                },
            );
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.overwritten(), 0);
        let cycles: Vec<u64> = t.events_in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(
            EventKind::WindowBoundary {
                index: 0,
                promotions: 0,
                demotions: 0,
                failed_promotions: 0,
                dropped_orders: 0
            }
            .name(),
            "window"
        );
        assert_eq!(
            EventKind::ChannelSaturated {
                tier: 1,
                backlog_cycles: 5
            }
            .name(),
            "channel_saturated"
        );
        assert_eq!(tier_name(0), "fast");
        assert_eq!(tier_name(1), "slow");
    }
}
