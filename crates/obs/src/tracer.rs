//! Structured event tracing: a preallocated ring buffer of typed,
//! sim-cycle-stamped simulator events.
//!
//! The tracer is designed around two constraints:
//!
//! 1. **Determinism.** Events carry only simulation state — cycles,
//!    page numbers, counter values. No wall-clock time, no host
//!    pointers, no iteration order over hash maps. Two runs of the same
//!    seed produce the same event sequence, byte for byte after export.
//! 2. **Zero cost when off.** [`Tracer::disabled`] allocates nothing
//!    and [`Tracer::emit`] reduces to one predictable branch, so the
//!    simulator hot path can emit unconditionally.
//!
//! When the ring fills, the oldest events are overwritten (and
//! counted), which bounds memory for arbitrarily long runs while
//! keeping the most recent — usually most interesting — history.

use pact_stats::codec::{ByteReader, ByteWriter, CodecError};

use crate::intern::intern;

/// Tier index used by events (`0 = fast`, `1 = slow`); avoids a
/// dependency on `pact-tiersim`, which sits above this crate.
pub type TierIdx = u8;

/// One recorded simulator event, stamped with the machine cycle at
/// which it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The typed simulator events the substrate emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A sampling-window boundary fired, with the window's migration
    /// and queue-pressure activity.
    WindowBoundary {
        /// Zero-based window index.
        index: u64,
        /// Base pages promoted during the window.
        promotions: u64,
        /// Base pages demoted during the window.
        demotions: u64,
        /// Promotions rejected for lack of fast-tier space.
        failed_promotions: u64,
        /// Orders dropped on daemon-queue overflow.
        dropped_orders: u64,
    },
    /// A policy issued a migration order.
    OrderIssued {
        /// Global page number of the unit to migrate.
        page: u64,
        /// Destination tier index.
        to: TierIdx,
        /// Whether the triggering thread pays the migration cost.
        sync: bool,
    },
    /// A migration order was executed.
    OrderCompleted {
        /// Global page number of the migrated unit.
        page: u64,
        /// Destination tier index.
        to: TierIdx,
        /// Base pages moved.
        moved: u64,
    },
    /// A migration order was dropped because the daemon queue was full.
    OrderDropped {
        /// Global page number of the unit that was not migrated.
        page: u64,
        /// Intended destination tier index.
        to: TierIdx,
    },
    /// A promotion failed because the fast tier had no space.
    PromotionRejected {
        /// Global page number of the rejected unit.
        page: u64,
    },
    /// A memory channel's backlog crossed into saturation.
    ChannelSaturated {
        /// Saturated tier index.
        tier: TierIdx,
        /// Backlog at detection, in cycles of channel time.
        backlog_cycles: u64,
    },
    /// A previously saturated channel drained below the threshold.
    ChannelRecovered {
        /// Recovered tier index.
        tier: TierIdx,
        /// Length of the saturation episode in cycles.
        episode_cycles: u64,
    },
    /// The window's batch of delivered samples (PEBS + hint faults).
    SampleBatch {
        /// PEBS samples delivered during the window.
        pebs: u64,
        /// Hint faults taken during the window.
        hint_faults: u64,
    },
    /// A named value the policy reported for this window.
    PolicyTelemetry {
        /// Telemetry key (policy-defined, e.g. `"bin_width"`).
        key: &'static str,
        /// Reported value.
        value: f64,
    },
    /// The fault-injection layer fired a fault.
    FaultInjected {
        /// Stable fault-class name (e.g. `"order_drop"`,
        /// `"migration_fail"`, `"channel_stall"`, `"pebs_loss"`,
        /// `"chmu_overflow"`).
        kind: &'static str,
        /// Class-specific argument: the affected page for migration and
        /// sampling faults, booked lines for channel stalls.
        arg: u64,
    },
    /// A transiently failed migration order was requeued for retry.
    OrderRetried {
        /// Global page number of the retried unit.
        page: u64,
        /// Destination tier index.
        to: TierIdx,
        /// 1-based retry attempt.
        attempt: u32,
    },
    /// Admission control rejected a migration order at issue (token
    /// bucket empty or channel backpressure) and deferred it.
    AdmissionRejected {
        /// Index of the tenant whose order was rejected.
        tenant: u32,
        /// Global page number of the rejected unit.
        page: u64,
        /// Destination tier index.
        to: TierIdx,
    },
}

impl EventKind {
    /// Stable lowercase name of the event type, used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::WindowBoundary { .. } => "window",
            EventKind::OrderIssued { .. } => "order_issued",
            EventKind::OrderCompleted { .. } => "order_completed",
            EventKind::OrderDropped { .. } => "order_dropped",
            EventKind::PromotionRejected { .. } => "promotion_rejected",
            EventKind::ChannelSaturated { .. } => "channel_saturated",
            EventKind::ChannelRecovered { .. } => "channel_recovered",
            EventKind::SampleBatch { .. } => "sample_batch",
            EventKind::PolicyTelemetry { .. } => "policy_telemetry",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::OrderRetried { .. } => "order_retried",
            EventKind::AdmissionRejected { .. } => "admission_rejected",
        }
    }
}

impl EventKind {
    /// Serializes the event kind as a tag byte plus its fields.
    fn encode(&self, w: &mut ByteWriter) {
        match *self {
            EventKind::WindowBoundary {
                index,
                promotions,
                demotions,
                failed_promotions,
                dropped_orders,
            } => {
                w.put_u8(0);
                w.put_u64(index);
                w.put_u64(promotions);
                w.put_u64(demotions);
                w.put_u64(failed_promotions);
                w.put_u64(dropped_orders);
            }
            EventKind::OrderIssued { page, to, sync } => {
                w.put_u8(1);
                w.put_u64(page);
                w.put_u8(to);
                w.put_bool(sync);
            }
            EventKind::OrderCompleted { page, to, moved } => {
                w.put_u8(2);
                w.put_u64(page);
                w.put_u8(to);
                w.put_u64(moved);
            }
            EventKind::OrderDropped { page, to } => {
                w.put_u8(3);
                w.put_u64(page);
                w.put_u8(to);
            }
            EventKind::PromotionRejected { page } => {
                w.put_u8(4);
                w.put_u64(page);
            }
            EventKind::ChannelSaturated {
                tier,
                backlog_cycles,
            } => {
                w.put_u8(5);
                w.put_u8(tier);
                w.put_u64(backlog_cycles);
            }
            EventKind::ChannelRecovered {
                tier,
                episode_cycles,
            } => {
                w.put_u8(6);
                w.put_u8(tier);
                w.put_u64(episode_cycles);
            }
            EventKind::SampleBatch { pebs, hint_faults } => {
                w.put_u8(7);
                w.put_u64(pebs);
                w.put_u64(hint_faults);
            }
            EventKind::PolicyTelemetry { key, value } => {
                w.put_u8(8);
                w.put_str(key);
                w.put_f64(value);
            }
            EventKind::FaultInjected { kind, arg } => {
                w.put_u8(9);
                w.put_str(kind);
                w.put_u64(arg);
            }
            EventKind::OrderRetried { page, to, attempt } => {
                w.put_u8(10);
                w.put_u64(page);
                w.put_u8(to);
                w.put_u32(attempt);
            }
            EventKind::AdmissionRejected { tenant, page, to } => {
                w.put_u8(11);
                w.put_u32(tenant);
                w.put_u64(page);
                w.put_u8(to);
            }
        }
    }

    /// Decodes one event kind; string fields are interned back to
    /// `&'static str`.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, String> {
        let e = |e: CodecError| e.to_string();
        Ok(match r.get_u8().map_err(e)? {
            0 => EventKind::WindowBoundary {
                index: r.get_u64().map_err(e)?,
                promotions: r.get_u64().map_err(e)?,
                demotions: r.get_u64().map_err(e)?,
                failed_promotions: r.get_u64().map_err(e)?,
                dropped_orders: r.get_u64().map_err(e)?,
            },
            1 => EventKind::OrderIssued {
                page: r.get_u64().map_err(e)?,
                to: r.get_u8().map_err(e)?,
                sync: r.get_bool().map_err(e)?,
            },
            2 => EventKind::OrderCompleted {
                page: r.get_u64().map_err(e)?,
                to: r.get_u8().map_err(e)?,
                moved: r.get_u64().map_err(e)?,
            },
            3 => EventKind::OrderDropped {
                page: r.get_u64().map_err(e)?,
                to: r.get_u8().map_err(e)?,
            },
            4 => EventKind::PromotionRejected {
                page: r.get_u64().map_err(e)?,
            },
            5 => EventKind::ChannelSaturated {
                tier: r.get_u8().map_err(e)?,
                backlog_cycles: r.get_u64().map_err(e)?,
            },
            6 => EventKind::ChannelRecovered {
                tier: r.get_u8().map_err(e)?,
                episode_cycles: r.get_u64().map_err(e)?,
            },
            7 => EventKind::SampleBatch {
                pebs: r.get_u64().map_err(e)?,
                hint_faults: r.get_u64().map_err(e)?,
            },
            8 => EventKind::PolicyTelemetry {
                key: intern(r.get_str().map_err(e)?),
                value: r.get_f64().map_err(e)?,
            },
            9 => EventKind::FaultInjected {
                kind: intern(r.get_str().map_err(e)?),
                arg: r.get_u64().map_err(e)?,
            },
            10 => EventKind::OrderRetried {
                page: r.get_u64().map_err(e)?,
                to: r.get_u8().map_err(e)?,
                attempt: r.get_u32().map_err(e)?,
            },
            11 => EventKind::AdmissionRejected {
                tenant: r.get_u32().map_err(e)?,
                page: r.get_u64().map_err(e)?,
                to: r.get_u8().map_err(e)?,
            },
            // pact-lint: allow(event-exhaustiveness) — unknown tags from newer frames must error, not silently map to a variant
            other => return Err(format!("unknown trace event tag {other}")),
        })
    }
}

/// Human-readable tier name for a [`TierIdx`].
pub(crate) fn tier_name(t: TierIdx) -> &'static str {
    if t == 0 {
        "fast"
    } else {
        "slow"
    }
}

/// A bounded, preallocated event sink.
///
/// Construct with [`Tracer::ring`] to record (capacity fixed up
/// front), or [`Tracer::disabled`] for a no-op sink that never
/// allocates. The simulator emits into either unconditionally.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    /// Ring head: index of the oldest event once the buffer has wrapped.
    head: usize,
    overwritten: u64,
}

/// Default ring capacity: enough for every window event of a
/// paper-scale run plus a dense migration phase, at ~40 B/event.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

impl Tracer {
    /// A disabled sink: no allocation, `emit` is a single branch.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            cap: 0,
            events: Vec::new(),
            head: 0,
            overwritten: 0,
        }
    }

    /// An enabled sink with a preallocated ring of `capacity` events
    /// (at least 1). When full, the oldest events are overwritten.
    pub fn ring(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            enabled: true,
            cap,
            events: Vec::with_capacity(cap),
            head: 0,
            overwritten: 0,
        }
    }

    /// Whether this sink records events.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op on a disabled sink).
    #[inline(always)]
    pub fn emit(&mut self, cycle: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent { cycle, kind });
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten after the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Ring capacity (0 for a disabled sink).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Serializes the sink's configuration and full ring contents into
    /// `out`; the inverse is [`decode_state`](Self::decode_state).
    pub fn encode_state(&self, out: &mut ByteWriter) {
        out.put_bool(self.enabled);
        out.put_usize(self.cap);
        out.put_usize(self.head);
        out.put_u64(self.overwritten);
        out.put_usize(self.events.len());
        for ev in &self.events {
            out.put_u64(ev.cycle);
            ev.kind.encode(out);
        }
    }

    /// Restores ring contents captured by [`encode_state`]
    /// (Self::encode_state) into this sink.
    ///
    /// The sink must have been constructed with the same enablement and
    /// capacity as the captured one (a resumed run re-creates its
    /// tracer from the same settings); a mismatch is an error rather
    /// than a silent trace divergence.
    pub fn decode_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), String> {
        let e = |e: CodecError| e.to_string();
        let enabled = r.get_bool().map_err(e)?;
        let cap = r.get_usize().map_err(e)?;
        if enabled != self.enabled || cap != self.cap {
            return Err(format!(
                "tracer snapshot was enabled={enabled} cap={cap}, this run has enabled={} cap={}",
                self.enabled, self.cap
            ));
        }
        let head = r.get_usize().map_err(e)?;
        let overwritten = r.get_u64().map_err(e)?;
        let len = r.get_usize().map_err(e)?;
        // The head is meaningful only once the ring has wrapped
        // (len == cap); before that it must still be 0.
        if len > cap || (head != 0 && (len < cap || head >= cap)) {
            return Err(format!(
                "tracer snapshot ring shape is invalid: len={len} head={head} cap={cap}"
            ));
        }
        let mut events = Vec::with_capacity(self.cap.max(len));
        for _ in 0..len {
            let cycle = r.get_u64().map_err(e)?;
            let kind = EventKind::decode(r)?;
            events.push(TraceEvent { cycle, kind });
        }
        self.events = events;
        self.head = head;
        self.overwritten = overwritten;
        Ok(())
    }

    /// The held events in chronological (emission) order.
    pub fn events_in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_never_allocates() {
        let mut t = Tracer::disabled();
        for i in 0..10_000 {
            t.emit(i, EventKind::PromotionRejected { page: i });
        }
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 0);
        // The backing vector must not have grown: zero capacity means
        // zero heap allocation for the event buffer.
        assert_eq!(t.events.capacity(), 0);
        assert_eq!(t.overwritten(), 0);
    }

    #[test]
    fn ring_preserves_order_and_overwrites_oldest() {
        let mut t = Tracer::ring(4);
        for i in 0..6u64 {
            t.emit(i, EventKind::PromotionRejected { page: i });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.overwritten(), 2);
        let cycles: Vec<u64> = t.events_in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4, 5]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut t = Tracer::ring(16);
        for i in 0..5u64 {
            t.emit(
                i * 100,
                EventKind::SampleBatch {
                    pebs: i,
                    hint_faults: 0,
                },
            );
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.overwritten(), 0);
        let cycles: Vec<u64> = t.events_in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn state_round_trips_through_encode_decode() {
        let mut t = Tracer::ring(4);
        // One of every string-carrying event plus a wrap.
        t.emit(
            10,
            EventKind::PolicyTelemetry {
                key: "bin_width",
                value: 2.5,
            },
        );
        t.emit(
            20,
            EventKind::FaultInjected {
                kind: "order_drop",
                arg: 7,
            },
        );
        for i in 0..4u64 {
            t.emit(
                30 + i,
                EventKind::OrderRetried {
                    page: i,
                    to: 1,
                    attempt: 2,
                },
            );
        }
        assert_eq!(t.overwritten(), 2);
        let mut w = ByteWriter::new();
        t.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = Tracer::ring(4);
        fresh.decode_state(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(fresh.events_in_order(), t.events_in_order());
        assert_eq!(fresh.overwritten(), t.overwritten());
        // Continuing both in lockstep keeps them identical.
        t.emit(99, EventKind::PromotionRejected { page: 9 });
        fresh.emit(99, EventKind::PromotionRejected { page: 9 });
        assert_eq!(fresh.events_in_order(), t.events_in_order());
        // Re-encoding yields the same bytes.
        let mut w2 = ByteWriter::new();
        fresh.encode_state(&mut w2);
        let mut w3 = ByteWriter::new();
        t.encode_state(&mut w3);
        assert_eq!(w2.into_bytes(), w3.into_bytes());
    }

    #[test]
    fn decode_rejects_mismatched_sink_shape() {
        let t = Tracer::ring(8);
        let mut w = ByteWriter::new();
        t.encode_state(&mut w);
        let bytes = w.into_bytes();
        // Wrong capacity.
        let mut other = Tracer::ring(4);
        assert!(other.decode_state(&mut ByteReader::new(&bytes)).is_err());
        // Wrong enablement.
        let mut off = Tracer::disabled();
        assert!(off.decode_state(&mut ByteReader::new(&bytes)).is_err());
        // Truncated payload.
        let mut same = Tracer::ring(8);
        assert!(same
            .decode_state(&mut ByteReader::new(&bytes[..3]))
            .is_err());
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(
            EventKind::WindowBoundary {
                index: 0,
                promotions: 0,
                demotions: 0,
                failed_promotions: 0,
                dropped_orders: 0
            }
            .name(),
            "window"
        );
        assert_eq!(
            EventKind::ChannelSaturated {
                tier: 1,
                backlog_cycles: 5
            }
            .name(),
            "channel_saturated"
        );
        assert_eq!(tier_name(0), "fast");
        assert_eq!(tier_name(1), "slow");
    }

    #[test]
    fn admission_rejection_round_trips() {
        let mut t = Tracer::ring(4);
        let kind = EventKind::AdmissionRejected {
            tenant: 2,
            page: 4096,
            to: 0,
        };
        assert_eq!(kind.name(), "admission_rejected");
        t.emit(17, kind);
        let mut w = ByteWriter::new();
        t.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = Tracer::ring(4);
        fresh.decode_state(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(fresh.events_in_order(), t.events_in_order());
    }
}
