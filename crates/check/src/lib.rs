//! # pact-check — deterministic validation for the PACT reproduction
//!
//! The simulator stack is only as trustworthy as the checks around it.
//! This crate is the validation subsystem the CI pipeline gates on,
//! with three complementary attacks on the same question — *is the
//! simulation still telling the truth?*
//!
//! 1. **Runtime invariants** (implemented in
//!    [`pact_tiersim::InvariantSet`], armed via
//!    `MachineConfig::invariants`): conservation laws checked at every
//!    window boundary — page-count conservation, migration-order
//!    ledger balance, channel bandwidth ≤ capacity, MSHR bounds,
//!    counter monotonicity, and window-record/registry agreement.
//! 2. **Differential oracles** ([`differential`]): the same cell run
//!    under observation variants that must not change the answer —
//!    tracing on/off, invariant checking on/off, an inert fault plan
//!    on/off — byte-compared; plus cross-configuration dominance
//!    (an all-local run must never lose to an all-remote run) and
//!    kill-resume crash recovery (a run killed at a snapshot boundary
//!    and resumed must finish byte-identically across shard counts).
//! 3. **A deterministic config fuzzer** ([`fuzz`]): SplitMix64-driven
//!    generation of valid-but-adversarial machine configurations,
//!    fault plans, and synthetic workloads, each run with the full
//!    invariant set armed; failing seeds print as one-line repro
//!    commands.
//!
//! Everything is seed-deterministic: the same `(cases, seed)` pair
//! always produces the same ledger, so a CI failure reproduces exactly
//! on a laptop.
//!
//! The `tierctl check` subcommand in `pact-bench` is the CLI front end.

#![warn(missing_docs)]

pub mod differential;
pub mod fuzz;

pub use differential::{
    attribution_oracle, check_cell, dominance_oracle, kill_resume_oracle,
    tenant_conservation_oracle, DiffLedger,
};
pub use fuzz::{case_seed, run_case, run_fuzz, CaseSummary, FuzzLedger, FuzzOptions};
