//! Deterministic configuration fuzzer: hundreds of valid-but-edgy
//! machine configurations, fault plans, and synthetic workloads, each
//! run with the full runtime invariant set armed.
//!
//! Everything derives from one SplitMix64 stream per case, and the
//! per-case seed derives from `(master seed, case index)`, so:
//!
//! * the same `(cases, seed)` pair always produces the same ledger;
//! * a failing case reproduces in isolation from its printed seed via
//!   `tierctl check --case 0x<seed>`, no matter which sweep found it.
//!
//! Each case runs its cell **twice** and byte-compares the serialized
//! reports (catching nondeterminism the invariants cannot see), then a
//! **third** time at a permuted event-loop shard count (sharding must
//! never change a single output byte — DESIGN.md §12), and
//! PACT cells additionally pass through
//! [`PactPolicy::audit`](pact_core::PactPolicy::audit).

use pact_core::{PactConfig, PactPolicy, RankBy};
use pact_stats::SplitMix64;
use pact_tiersim::{
    Access, FaultPlan, FirstTouch, InvariantSet, Machine, MachineConfig, PebsScope, RunReport,
    StallFault, Tier, TieringPolicy, TraceWorkload, PAGE_BYTES,
};

/// Fuzzer parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// Number of generated cases.
    pub cases: u32,
    /// Master seed; every case seed derives from it.
    pub seed: u64,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        Self {
            cases: 120,
            seed: 1,
        }
    }
}

/// Summary of one passing case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSummary {
    /// Name of the policy the case ran.
    pub policy: String,
    /// Number of completed windows.
    pub windows: usize,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Whether a fault plan was armed.
    pub faulted: bool,
}

/// Outcome ledger of one fuzz sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzLedger {
    /// One line per case (plus a repro line after each failure).
    pub lines: Vec<String>,
    /// Seeds of the failing cases, in case order.
    pub failures: Vec<u64>,
}

impl FuzzLedger {
    /// True when every case passed.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the ledger, one case per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Derives the deterministic seed of case `index` under `master`.
pub fn case_seed(master: u64, index: u32) -> u64 {
    SplitMix64::seed_from_u64(master ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .next_u64()
}

fn pick<T: Copy>(rng: &mut SplitMix64, options: &[T]) -> T {
    options[(rng.next_u64() % options.len() as u64) as usize]
}

/// Generates a valid machine configuration biased toward edge cases:
/// empty or tiny fast tiers, THP with small unit spans, short windows,
/// minimal MSHR counts, aggressive sampling, and (half the time) an
/// active fault plan. Invariant checking is always armed.
fn gen_config(rng: &mut SplitMix64) -> MachineConfig {
    let mut cfg = MachineConfig::skylake_cxl(pick(rng, &[0, 1, 7, 64, 256, 1024]));
    cfg.mshrs = 1 + (rng.next_u64() % 16) as usize;
    cfg.llc.size_bytes = pick(rng, &[16 << 10, 64 << 10, 256 << 10]);
    cfg.llc.ways = pick(rng, &[4, 8, 16]);
    cfg.window_cycles = 5_000 + rng.next_u64() % 95_000;
    cfg.pebs.rate = pick(rng, &[1, 5, 20, 50, 200]);
    cfg.pebs.scope = if rng.next_u64() & 1 == 0 {
        PebsScope::SlowOnly
    } else {
        PebsScope::BothTiers
    };
    cfg.prefetch.enabled = rng.next_u64() & 1 == 0;
    cfg.prefetch.coverage = rng.random::<f64>();
    cfg.thp = rng.next_u64().is_multiple_of(4);
    cfg.thp_unit_pages = pick(rng, &[2, 4, 8, 16]);
    cfg.migration.daemon_pages_per_window = pick(rng, &[0, 8, 256, 4_096]);
    cfg.chmu_counters = pick(rng, &[0, 0, 0, 64]);
    cfg.shards = pick(rng, &[1, 1, 1, 2, 4, 8]);
    cfg.track_page_stalls = rng.next_u64().is_multiple_of(8);
    cfg.seed = rng.next_u64();
    if rng.next_u64() & 1 == 0 {
        cfg.fault_plan = Some(gen_fault_plan(rng));
    }
    cfg.invariants = Some(InvariantSet::all());
    cfg
}

fn gen_fault_plan(rng: &mut SplitMix64) -> FaultPlan {
    let window_start = rng.next_u64() % 4;
    let stall = if rng.next_u64() & 1 == 0 {
        Some(StallFault {
            tier: if rng.next_u64() & 1 == 0 {
                Tier::Fast
            } else {
                Tier::Slow
            },
            lines: 64 + rng.next_u64() % 5_000,
            prob: rng.random::<f64>() * 0.8,
        })
    } else {
        None
    };
    FaultPlan {
        seed: rng.next_u64(),
        window_start,
        window_end: window_start + 1 + rng.next_u64() % 64,
        drop_order: rng.random::<f64>() * 0.5,
        fail_migration: rng.random::<f64>() * 0.7,
        max_retries: (rng.next_u64() % 4) as u32,
        backoff_windows: 1 + rng.next_u64() % 3,
        stall,
        pebs_loss: rng.random::<f64>() * 0.3,
        chmu_overflow: rng.random::<f64>() * 0.2,
    }
}

/// Generates a small synthetic workload: a stream, a pointer chase, or
/// an interleaving of both, over 8–512 pages and 2k–10k accesses.
fn gen_workload(rng: &mut SplitMix64) -> TraceWorkload {
    let pages = 8 + rng.next_u64() % 505;
    let n = 2_000 + rng.next_u64() % 8_000;
    let mode = rng.next_u64() % 3;
    let lines_per_page = PAGE_BYTES / 64;
    let mut x = rng.next_u64() | 1;
    let mut trace = Vec::with_capacity(n as usize);
    for i in 0..n {
        let chase = match mode {
            0 => false,
            1 => true,
            _ => i & 2 == 0,
        };
        if chase {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = x % pages;
            let l = (x >> 32) % lines_per_page;
            trace.push(Access::dependent_load(p * PAGE_BYTES + l * 64).with_work(1));
        } else {
            let addr = (i * 64) % (pages * PAGE_BYTES);
            if i % 17 == 0 {
                trace.push(Access::store(addr));
            } else {
                trace.push(Access::load(addr));
            }
        }
    }
    TraceWorkload::new("fuzz", pages * PAGE_BYTES, trace)
}

enum FuzzPolicy {
    Pact(Box<PactPolicy>),
    First(FirstTouch),
}

impl FuzzPolicy {
    fn as_dyn(&mut self) -> &mut dyn TieringPolicy {
        match self {
            FuzzPolicy::Pact(p) => p.as_mut(),
            FuzzPolicy::First(p) => p,
        }
    }
}

fn gen_policy(rng: &mut SplitMix64) -> FuzzPolicy {
    match rng.next_u64() % 3 {
        // Invariant: the default config and a rank_by change both pass
        // PactConfig::validate (pinned by pact-core tests).
        0 => FuzzPolicy::Pact(Box::new(
            PactPolicy::new(PactConfig::default()).expect("default is valid"), // Invariant: see above
        )),
        1 => {
            let cfg = PactConfig {
                rank_by: RankBy::Frequency,
                ..PactConfig::default()
            };
            // Invariant: see above — validate accepts this config.
            FuzzPolicy::Pact(Box::new(PactPolicy::new(cfg).expect("config is valid")))
        }
        _ => FuzzPolicy::First(FirstTouch::new()),
    }
}

/// Runs one fuzz case from its seed: generate, simulate twice with the
/// invariant set armed, byte-compare the reports, and audit PACT's
/// internal state.
///
/// # Errors
///
/// Returns a one-line description of the first failure: a generated
/// config rejected by validation, an invariant violation (or any other
/// simulation error), report nondeterminism, or a policy audit
/// failure.
pub fn run_case(case_seed: u64) -> Result<CaseSummary, String> {
    let mut rng = SplitMix64::seed_from_u64(case_seed);
    let cfg = gen_config(&mut rng);
    cfg.validate()
        .map_err(|e| format!("generated config rejected: {e}"))?;
    let wl = gen_workload(&mut rng);
    let mut policy = gen_policy(&mut rng);
    let faulted = cfg.fault_plan.is_some();
    // Shard-permutation oracle: the same cell at a different event-loop
    // shard count must produce a byte-identical report — sharding is a
    // scheduling choice, never a semantic one (DESIGN.md §12).
    let shards = cfg.shards;
    let mut alt_cfg = cfg.clone();
    alt_cfg.shards = match shards {
        1 => 7,
        _ => 1,
    };
    let alt_shards = alt_cfg.shards;
    // Invariant: cfg.validate() just passed; alt_cfg differs only in
    // `shards`, which is valid for any value in 1..=256.
    let alt_machine = Machine::new(alt_cfg).expect("validated config");
    // Invariant: cfg.validate() just passed.
    let machine = Machine::new(cfg).expect("validated config");
    let mut run = || -> Result<RunReport, String> {
        machine
            .try_run(&wl, policy.as_dyn())
            .map_err(|e| format!("run failed: {e}"))
    };
    let r1 = run()?;
    let r2 = run()?;
    let (j1, j2) = (r1.to_json(), r2.to_json());
    if j1 != j2 {
        let pos = j1
            .bytes()
            .zip(j2.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(j1.len().min(j2.len()));
        return Err(format!("nondeterministic report (diverges at byte {pos})"));
    }
    let r3 = alt_machine
        .try_run(&wl, policy.as_dyn())
        .map_err(|e| format!("shard-variant run failed: {e}"))?;
    if j1 != r3.to_json() || r1.page_stalls != r3.page_stalls {
        return Err(format!(
            "shard-variant report diverges ({shards} vs {alt_shards} shards)"
        ));
    }
    if let FuzzPolicy::Pact(p) = &policy {
        p.audit().map_err(|e| format!("pact audit failed: {e}"))?;
    }
    Ok(CaseSummary {
        policy: r1.policy,
        windows: r1.windows.len(),
        total_cycles: r1.total_cycles,
        faulted,
    })
}

/// Runs `opts.cases` generated cases and collects the ledger. Failing
/// cases append a one-line repro command.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzLedger {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for i in 0..opts.cases {
        let seed = case_seed(opts.seed, i);
        match run_case(seed) {
            Ok(s) => lines.push(format!(
                "case {i:04} seed={seed:#018x} ok   policy={} windows={} cycles={}{}",
                s.policy,
                s.windows,
                s.total_cycles,
                if s.faulted { " faults=on" } else { "" }
            )),
            Err(e) => {
                lines.push(format!("case {i:04} seed={seed:#018x} FAIL {e}"));
                lines.push(format!(
                    "  repro: cargo run -p pact-bench --bin tierctl -- check --case {seed:#x}"
                ));
                failures.push(seed);
            }
        }
    }
    FuzzLedger { lines, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_sweep_is_green_and_deterministic() {
        let opts = FuzzOptions { cases: 20, seed: 1 };
        let a = run_fuzz(&opts);
        assert!(a.is_ok(), "\n{}", a.render());
        let b = run_fuzz(&opts);
        assert_eq!(a, b);
        assert_eq!(a.lines.len(), 20);
    }

    #[test]
    fn generated_configs_cover_serial_and_sharded_loops() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let shards: Vec<usize> = (0..32).map(|_| gen_config(&mut rng).shards).collect();
        assert!(shards.contains(&1));
        assert!(shards.iter().any(|&s| s > 1));
    }

    #[test]
    fn different_master_seeds_generate_different_cases() {
        assert_ne!(case_seed(1, 0), case_seed(2, 0));
        assert_ne!(case_seed(1, 0), case_seed(1, 1));
    }

    #[test]
    fn failing_case_renders_a_repro_line() {
        let ledger = FuzzLedger {
            lines: vec![
                "case 0003 seed=0x00000000deadbeef FAIL invariant 'migration-ledger' violated"
                    .into(),
                "  repro: cargo run -p pact-bench --bin tierctl -- check --case 0xdeadbeef".into(),
            ],
            failures: vec![0xdead_beef],
        };
        assert!(!ledger.is_ok());
        assert!(ledger
            .render()
            .contains("tierctl -- check --case 0xdeadbeef"));
    }

    #[test]
    fn single_case_reproduces_from_its_seed() {
        let seed = case_seed(1, 4);
        let a = run_case(seed).unwrap();
        let b = run_case(seed).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        fn arbitrary_seeds_run_clean(seed in any::<u64>()) {
            let r = run_case(seed);
            prop_assert!(r.is_ok(), "case seed {seed:#x} failed: {:?}", r.err());
        }
    }
}
