//! Differential oracles: run the same cell under observation variants
//! that must not change the simulated outcome, and byte-compare the
//! serialized reports.
//!
//! The variants exercised per cell:
//!
//! * **repeat** — the identical run twice (catches hidden global
//!   state and iteration-order nondeterminism);
//! * **trace** — event tracing on vs off (`run` vs `run_traced`);
//! * **invariants** — the runtime invariant checker armed vs not;
//! * **inert faults** — a fault plan whose every probability is zero.
//!   Fault-injection state registers its own `fault/*` metrics, so the
//!   comparison strips that namespace and demands byte-equality of
//!   everything else.
//!
//! Separately, [`dominance_oracle`] pins a cross-configuration sanity
//! law: with an identity policy, placing the whole footprint in the
//! fast tier can never be slower than placing it all in the slow tier;
//! [`attribution_oracle`] pins the criticality-attribution artifacts
//! (DESIGN.md §13) as byte-identical across shard counts on a
//! fault-injected cell and invariant under the host-side profiler; and
//! [`kill_resume_oracle`] pins crash recovery (DESIGN.md §14): a
//! fault-injected cell killed at a snapshot boundary and resumed must
//! finish byte-identically to the uninterrupted run, across shard
//! counts, while tampered frames are rejected with structured errors.

use pact_core::{PactConfig, PactPolicy};
use pact_tiersim::{
    AdmissionControl, CriticalityReport, FaultPlan, FirstTouch, InvariantSet, Machine,
    MachineConfig, MachineSnapshot, RunReport, SimError, TenantSpec, Tracer, Workload, PAGE_BYTES,
};
use pact_workloads::suite::{build, Scale};

/// Outcome ledger of one differential pass: one line per oracle, in a
/// fixed order, each either passing or carrying a failure description.
#[derive(Debug, Clone)]
pub struct DiffLedger {
    /// `(oracle name, result)` in execution order.
    pub lines: Vec<(String, Result<(), String>)>,
}

impl DiffLedger {
    /// Number of failing oracles.
    pub fn failures(&self) -> usize {
        self.lines.iter().filter(|(_, r)| r.is_err()).count()
    }

    /// True when every oracle passed.
    pub fn is_ok(&self) -> bool {
        self.failures() == 0
    }

    /// Renders the ledger, one line per oracle.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, result) in &self.lines {
            match result {
                Ok(()) => out.push_str(&format!("  ok   {name}\n")),
                Err(e) => out.push_str(&format!("  FAIL {name}: {e}\n")),
            }
        }
        out
    }
}

/// Serializes a report with the fault-injection metric namespace
/// stripped, so runs that differ only in whether `fault/*` series were
/// *registered* (not incremented) compare equal.
fn fingerprint(report: &RunReport) -> String {
    let mut r = report.clone();
    for w in &mut r.windows {
        w.metrics.retain(|(k, _)| !k.starts_with("fault/"));
    }
    r.to_json()
}

fn run_with(cfg: &MachineConfig, wl: &dyn Workload, traced: bool) -> Result<RunReport, SimError> {
    // Invariant: the caller's config came from a validated preset with
    // only validated-range edits, so Machine::new cannot fail.
    let machine = Machine::new(cfg.clone()).expect("differential config is valid");
    // Invariant: the default PactConfig passes its own validation
    // (pinned by pact-core tests).
    let mut policy = PactPolicy::new(PactConfig::default()).expect("default config is valid");
    if traced {
        let mut tracer = Tracer::ring(1 << 16);
        machine.try_run_traced(wl, &mut policy, &mut tracer)
    } else {
        machine.try_run(wl, &mut policy)
    }
}

/// A fault plan that can never fire: every probability is zero and no
/// stall is configured. Arming it must not change any simulated value.
fn inert_fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_order: 0.0,
        fail_migration: 0.0,
        stall: None,
        pebs_loss: 0.0,
        chmu_overflow: 0.0,
        ..FaultPlan::default()
    }
}

/// Runs the full differential pass for one `(workload, seed)` cell at
/// smoke scale and a 1:1 tier ratio, returning the per-oracle ledger.
///
/// # Panics
///
/// Panics on an unknown workload name (see
/// [`pact_workloads::suite::SUITE`]).
pub fn check_cell(workload: &str, seed: u64) -> DiffLedger {
    let wl = build(workload, Scale::Smoke, seed);
    let total_pages = wl.footprint_bytes().div_ceil(PAGE_BYTES);
    let mut cfg = MachineConfig::skylake_cxl((total_pages / 2).max(1));
    cfg.seed = seed;

    let mut lines = Vec::new();
    let base = match run_with(&cfg, wl.as_ref(), false) {
        Ok(r) => r,
        Err(e) => {
            lines.push(("baseline".to_string(), Err(format!("run failed: {e}"))));
            return DiffLedger { lines };
        }
    };
    let base_json = base.to_json();
    lines.push(("baseline".to_string(), Ok(())));

    let compare = |label: &str, cfg: &MachineConfig, traced: bool, filtered: bool| {
        let result = match run_with(cfg, wl.as_ref(), traced) {
            Ok(r) => {
                let (got, want) = if filtered {
                    (fingerprint(&r), fingerprint(&base))
                } else {
                    (r.to_json(), base_json.clone())
                };
                if got == want {
                    Ok(())
                } else {
                    Err(diff_hint(&want, &got))
                }
            }
            Err(e) => Err(format!("run failed: {e}")),
        };
        (label.to_string(), result)
    };

    lines.push(compare("repeat is byte-identical", &cfg, false, false));
    lines.push(compare(
        "tracing does not perturb the run",
        &cfg,
        true,
        false,
    ));

    let mut inv_cfg = cfg.clone();
    inv_cfg.invariants = Some(InvariantSet::all());
    lines.push(compare(
        "invariant checking is zero-cost and passes",
        &inv_cfg,
        false,
        false,
    ));

    let mut fault_cfg = cfg.clone();
    fault_cfg.fault_plan = Some(inert_fault_plan(seed ^ 0x5bd1_e995));
    lines.push(compare(
        "inert fault plan does not perturb the run",
        &fault_cfg,
        false,
        true,
    ));

    lines.push((
        "all-local dominates all-remote".to_string(),
        dominance_oracle(wl.as_ref(), seed),
    ));

    lines.push((
        "criticality artifacts are shard- and profiler-invariant".to_string(),
        attribution_oracle(wl.as_ref(), seed),
    ));

    lines.push((
        "kill-resume is byte-identical across shard counts".to_string(),
        kill_resume_oracle(wl.as_ref(), seed),
    ));

    lines.push((
        "fleet tenant lanes conserve and are shard-invariant".to_string(),
        tenant_conservation_oracle(workload, seed),
    ));

    DiffLedger { lines }
}

/// Fleet conservation oracle (DESIGN.md §15): colocates the cell's
/// workload with the `mlc-hog` bandwidth antagonist and the
/// `zipf-drift` skew tenant under migration admission control, then
/// demands that the per-tenant lanes are an *exact partition* of the
/// global totals — every PMU counter, the migration/admission stats,
/// and the `[fast, slow]` page-stall lanes each sum to the run's
/// globals — and that the whole fleet report is byte-identical across
/// event-loop shard counts.
///
/// # Errors
///
/// Returns the first non-conserving quantity or shard divergence.
pub fn tenant_conservation_oracle(workload: &str, seed: u64) -> Result<(), String> {
    let cell = build(workload, Scale::Smoke, seed);
    let hog = build("mlc-hog", Scale::Smoke, seed);
    let zipf = build("zipf-drift", Scale::Smoke, seed);
    let tenants: [&dyn Workload; 3] = [cell.as_ref(), hog.as_ref(), zipf.as_ref()];
    let total_pages: u64 = tenants
        .iter()
        .map(|w| w.footprint_bytes().div_ceil(PAGE_BYTES))
        .sum();
    let mut cfg = MachineConfig::skylake_cxl((total_pages / 2).max(1));
    cfg.seed = seed;
    cfg.track_page_stalls = true;
    cfg.tenants = vec![
        TenantSpec::new(cell.name(), 4),
        TenantSpec::new("mlc-hog", 1),
        TenantSpec::new("zipf-drift", 2),
    ];
    // A deliberately tight budget so the admission path (tokens,
    // deferrals, backpressure) actually runs on a smoke-scale cell.
    cfg.admission = Some(AdmissionControl {
        budget_per_window: 4,
        ..AdmissionControl::default()
    });

    let run = |cfg: &MachineConfig| -> Result<RunReport, String> {
        // Invariant: the preset plus validated-range edits construct.
        let m = Machine::new(cfg.clone()).expect("fleet config is valid");
        // Invariant: the default PactConfig passes its own validation.
        let mut p = PactPolicy::new(PactConfig::default()).expect("default config is valid");
        m.try_run_colocated(&tenants, &mut p)
            .map_err(|e| format!("fleet run failed: {e}"))
    };
    let base = run(&cfg)?;
    if base.tenants.len() != 3 {
        return Err(format!(
            "expected 3 tenant lanes, report has {}",
            base.tenants.len()
        ));
    }

    // Exact partition of the PMU counters.
    let lane = |f: &dyn Fn(&pact_tiersim::TenantReport) -> u64| -> u64 {
        base.tenants.iter().map(f).sum()
    };
    let scalar_checks: [(&str, u64, u64); 6] = [
        (
            "accesses",
            base.counters.accesses,
            lane(&|t| t.counters.accesses),
        ),
        ("loads", base.counters.loads, lane(&|t| t.counters.loads)),
        ("stores", base.counters.stores, lane(&|t| t.counters.stores)),
        (
            "llc_hits",
            base.counters.llc_hits,
            lane(&|t| t.counters.llc_hits),
        ),
        (
            "hint_faults",
            base.counters.hint_faults,
            lane(&|t| t.counters.hint_faults),
        ),
        (
            "pebs_samples",
            base.counters.pebs_samples,
            lane(&|t| t.counters.pebs_samples),
        ),
    ];
    for (name, global, sum) in scalar_checks {
        if global != sum {
            return Err(format!(
                "tenant {name} lanes sum to {sum}, global is {global}"
            ));
        }
    }
    for lane_idx in 0..2usize {
        let pair_checks: [(&str, u64, u64); 7] = [
            (
                "llc_misses",
                base.counters.llc_misses[lane_idx],
                lane(&|t| t.counters.llc_misses[lane_idx]),
            ),
            (
                "tor_occupancy",
                base.counters.tor_occupancy[lane_idx],
                lane(&|t| t.counters.tor_occupancy[lane_idx]),
            ),
            (
                "llc_stalls",
                base.counters.llc_stalls[lane_idx],
                lane(&|t| t.counters.llc_stalls[lane_idx]),
            ),
            (
                "tor_busy",
                base.counters.tor_busy[lane_idx],
                lane(&|t| t.counters.tor_busy[lane_idx]),
            ),
            (
                "demand_latency_sum",
                base.counters.demand_latency_sum[lane_idx],
                lane(&|t| t.counters.demand_latency_sum[lane_idx]),
            ),
            (
                "bytes",
                base.counters.bytes[lane_idx],
                lane(&|t| t.counters.bytes[lane_idx]),
            ),
            (
                "prefetches",
                base.counters.prefetches[lane_idx],
                lane(&|t| t.counters.prefetches[lane_idx]),
            ),
        ];
        for (name, global, sum) in pair_checks {
            if global != sum {
                return Err(format!(
                    "tenant {name}[{lane_idx}] lanes sum to {sum}, global is {global}"
                ));
            }
        }
    }

    // Exact partition of the migration ledger.
    let stats_checks: [(&str, u64, u64); 4] = [
        ("promotions", base.promotions, lane(&|t| t.promotions)),
        ("demotions", base.demotions, lane(&|t| t.demotions)),
        (
            "failed_promotions",
            base.failed_promotions,
            lane(&|t| t.failed_promotions),
        ),
        (
            "dropped_orders",
            base.dropped_orders,
            lane(&|t| t.dropped_orders),
        ),
    ];
    for (name, global, sum) in stats_checks {
        if global != sum {
            return Err(format!(
                "tenant {name} lanes sum to {sum}, global is {global}"
            ));
        }
    }

    // Exact partition of the page-stall oracle.
    let mut oracle_totals = [0u64; 2];
    for lanes in base
        .page_stalls
        .as_ref()
        // Invariant: this oracle's config sets track_page_stalls.
        .expect("track_page_stalls is on")
        .values()
    {
        oracle_totals[0] += lanes[0];
        oracle_totals[1] += lanes[1];
    }
    for (i, &total) in oracle_totals.iter().enumerate() {
        let sum = lane(&|t| t.stall_cycles[i]);
        if total != sum {
            return Err(format!(
                "tenant stall lane {i} sums to {sum}, oracle total is {total}"
            ));
        }
    }

    // The admission controller must have engaged on this cell: three
    // tenants against a 4-orders/window budget cannot all be admitted.
    let rejected = lane(&|t| t.rejected_orders);
    let admitted = lane(&|t| t.admitted_orders);
    if admitted == 0 {
        return Err("admission controller admitted no orders".to_string());
    }
    if rejected == 0 {
        return Err("admission controller never rejected an order".to_string());
    }

    // Shard-invariance of the whole fleet report.
    let base_json = base.to_json();
    for shards in [4usize, 7] {
        let mut sharded = cfg.clone();
        sharded.shards = shards;
        let got = run(&sharded)?.to_json();
        if got != base_json {
            return Err(format!(
                "fleet report diverges at {shards} shards: {}",
                diff_hint(&base_json, &got)
            ));
        }
    }
    Ok(())
}

/// Kill-resume oracle (DESIGN.md §14): a fault-injected cell run to
/// completion must be byte-identical to the same cell killed at a
/// snapshot boundary and resumed from the frame — for every sampled
/// snapshot point, under `shards ∈ {1, 4, 7}`. Both the serialized
/// run report (windows + metrics) and the criticality-attribution
/// artifacts derived from the `[fast, slow]` page-stall oracle are
/// compared. The oracle also demands that a corrupted frame, a
/// version-bumped frame, and a configuration-mismatched frame are all
/// rejected with a structured snapshot error rather than silently
/// resumed.
///
/// Snapshot points are sampled (first, middle, last) so the oracle's
/// cost stays bounded on long cells while still covering cold-start,
/// steady-state, and end-of-run machine state.
///
/// # Errors
///
/// Returns the first diverging snapshot point or wrongly-accepted
/// frame with a byte-level hint.
pub fn kill_resume_oracle(wl: &dyn Workload, seed: u64) -> Result<(), String> {
    let total_pages = wl.footprint_bytes().div_ceil(PAGE_BYTES);
    let mut cfg = MachineConfig::skylake_cxl((total_pages / 2).max(1));
    cfg.seed = seed;
    cfg.track_page_stalls = true;
    cfg.snapshot_every = 1;
    // The same active plan as the attribution oracle: mid-flight retry
    // and backoff state is exactly what a snapshot must not lose.
    cfg.fault_plan = Some(FaultPlan {
        seed: seed ^ 0x9e37_79b9,
        drop_order: 0.05,
        fail_migration: 0.05,
        pebs_loss: 0.02,
        ..FaultPlan::default()
    });

    let artifacts = |report: &RunReport| -> Result<[String; 2], String> {
        let crit = CriticalityReport::new(report, 10)
            .ok_or_else(|| "run tracked no page stalls".to_string())?;
        Ok([report.to_json(), crit.folded()])
    };

    // Invariant: skylake_cxl presets with validated-range edits always
    // construct.
    let machine = Machine::new(cfg.clone()).expect("kill-resume config is valid");
    // Invariant: the default PactConfig passes its own validation.
    let mut policy = PactPolicy::new(PactConfig::default()).expect("default config is valid");
    let mut frames: Vec<MachineSnapshot> = Vec::new();
    let mut tracer = Tracer::disabled();
    let base = machine
        .try_run_snapshotting(&[wl], &mut policy, &mut tracer, &mut |s| frames.push(s))
        .map_err(|e| format!("capture run failed: {e}"))?;
    let base_art = artifacts(&base)?;
    if frames.is_empty() {
        return Err("capture run produced no snapshot frames".to_string());
    }

    let mut picks = vec![0, frames.len() / 2, frames.len() - 1];
    picks.dedup();
    let resume = |frame: &MachineSnapshot, shards: usize| -> Result<RunReport, SimError> {
        let mut rcfg = cfg.clone();
        rcfg.shards = shards;
        rcfg.snapshot_every = 0;
        // Invariant: shards ∈ 1..=256 and the base config was valid.
        let m = Machine::new(rcfg).expect("resume config is valid");
        // Invariant: the default PactConfig passes its own validation.
        let mut p = PactPolicy::new(PactConfig::default()).expect("default config is valid");
        let mut t = Tracer::disabled();
        m.try_resume(&[wl], &mut p, &mut t, frame)
    };
    for &i in &picks {
        let window = frames[i]
            .window()
            .map_err(|e| format!("frame {i} has an unreadable header: {e}"))?;
        for shards in [1usize, 4, 7] {
            let resumed = resume(&frames[i], shards)
                .map_err(|e| format!("resume from window {window} at {shards} shards: {e}"))?;
            let got = artifacts(&resumed)?;
            for (name, (want, have)) in ["report.json", "flame.folded"]
                .iter()
                .zip(base_art.iter().zip(got.iter()))
            {
                if want != have {
                    return Err(format!(
                        "{name} diverges after resume from window {window} at {shards} \
                         shards: {}",
                        diff_hint(want, have)
                    ));
                }
            }
        }
    }

    // Fail-closed checks: tampered frames must be rejected with a
    // structured snapshot error, never silently resumed.
    let last = frames.last().expect("frames is non-empty"); // Invariant: checked above
    let mut corrupt = last.as_bytes().to_vec();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    match resume(&MachineSnapshot::from_bytes(corrupt), 1) {
        Err(SimError::Snapshot(_)) => {}
        Err(e) => return Err(format!("corrupt frame rejected with the wrong error: {e}")),
        Ok(_) => return Err("corrupt frame was accepted".to_string()),
    }
    let mut bumped = last.as_bytes().to_vec();
    bumped[8] = 0x7f; // format-version field (see tiersim::snapshot layout)
    match resume(&MachineSnapshot::from_bytes(bumped), 1) {
        Err(SimError::Snapshot(e)) if e.contains("version") => {}
        Err(e) => {
            return Err(format!(
                "version-bumped frame rejected with the wrong error: {e}"
            ))
        }
        Ok(_) => return Err("version-bumped frame was accepted".to_string()),
    }
    let mismatched = {
        let mut mcfg = cfg.clone();
        mcfg.fast_tier_pages += 1;
        mcfg.snapshot_every = 0;
        // Invariant: growing the fast tier by one page stays valid.
        let m = Machine::new(mcfg).expect("mismatch config is valid");
        // Invariant: the default PactConfig passes its own validation.
        let mut p = PactPolicy::new(PactConfig::default()).expect("default config is valid");
        let mut t = Tracer::disabled();
        m.try_resume(&[wl], &mut p, &mut t, last)
    };
    match mismatched {
        Err(SimError::Snapshot(_)) => Ok(()),
        Err(e) => Err(format!(
            "configuration-mismatched frame rejected with the wrong error: {e}"
        )),
        Ok(_) => Err("configuration-mismatched frame was accepted".to_string()),
    }
}

/// Criticality-attribution oracle (DESIGN.md §13): the page-stall
/// oracle and every artifact derived from it — folded flamegraph,
/// JSON, markdown — are sim-domain data, so they must be
/// byte-identical across event-loop shard counts even on a
/// fault-injected cell, and arming the host-side profiler
/// (`pact_obs::hostprof`, wall clock) must not perturb them. This is
/// the enforced boundary between the deterministic sim clock and the
/// nondeterministic host clock.
///
/// # Errors
///
/// Returns the first diverging artifact with a byte-level hint.
pub fn attribution_oracle(wl: &dyn Workload, seed: u64) -> Result<(), String> {
    let total_pages = wl.footprint_bytes().div_ceil(PAGE_BYTES);
    let mut cfg = MachineConfig::skylake_cxl((total_pages / 2).max(1));
    cfg.seed = seed;
    cfg.track_page_stalls = true;
    // An *active* plan: dropped orders and failed migrations reshape
    // the blame distribution, which is exactly what must still be
    // shard-invariant.
    cfg.fault_plan = Some(FaultPlan {
        seed: seed ^ 0x9e37_79b9,
        drop_order: 0.05,
        fail_migration: 0.05,
        pebs_loss: 0.02,
        ..FaultPlan::default()
    });
    const ARTIFACTS: [&str; 3] = ["flame.folded", "report.json", "report.md"];
    let render = |cfg: &MachineConfig| -> Result<[String; 3], String> {
        let report = run_with(cfg, wl, false).map_err(|e| format!("run failed: {e}"))?;
        let crit = CriticalityReport::new(&report, 10)
            .ok_or_else(|| "run tracked no page stalls".to_string())?;
        Ok([crit.folded(), crit.to_json(), crit.to_markdown()])
    };
    let base = render(&cfg)?;
    for shards in [4usize, 7] {
        let mut sharded = cfg.clone();
        sharded.shards = shards;
        let got = render(&sharded)?;
        for (i, name) in ARTIFACTS.iter().enumerate() {
            if got[i] != base[i] {
                return Err(format!(
                    "{name} diverges at {shards} shards: {}",
                    diff_hint(&base[i], &got[i])
                ));
            }
        }
    }
    // Host profiler on/off: restore the previous state even on failure
    // so a failing oracle cannot leak profiling into other checks.
    let was = pact_obs::hostprof::enabled();
    pact_obs::hostprof::set_enabled(true);
    let profiled = render(&cfg);
    pact_obs::hostprof::set_enabled(was);
    let profiled = profiled?;
    for (i, name) in ARTIFACTS.iter().enumerate() {
        if profiled[i] != base[i] {
            return Err(format!(
                "{name} diverges with the host profiler armed: {}",
                diff_hint(&base[i], &profiled[i])
            ));
        }
    }
    Ok(())
}

/// Cross-configuration sanity law: with the identity (`notier`)
/// policy, a machine whose fast tier holds the whole footprint must
/// finish no later than one whose fast tier holds nothing.
///
/// # Errors
///
/// Returns the two cycle counts when the law is violated.
pub fn dominance_oracle(wl: &dyn Workload, seed: u64) -> Result<(), String> {
    let total_pages = wl.footprint_bytes().div_ceil(PAGE_BYTES);
    let mut local_cfg = MachineConfig::skylake_cxl(total_pages);
    local_cfg.seed = seed;
    let mut remote_cfg = MachineConfig::skylake_cxl(0);
    remote_cfg.seed = seed;
    let local = Machine::new(local_cfg)
        .expect("config is valid") // Invariant: skylake_cxl presets always construct
        .try_run(wl, &mut FirstTouch::new())
        .map_err(|e| format!("all-local run failed: {e}"))?;
    let remote = Machine::new(remote_cfg)
        .expect("config is valid") // Invariant: skylake_cxl presets always construct
        .try_run(wl, &mut FirstTouch::new())
        .map_err(|e| format!("all-remote run failed: {e}"))?;
    if local.total_cycles <= remote.total_cycles {
        Ok(())
    } else {
        Err(format!(
            "all-local took {} cycles but all-remote only {}",
            local.total_cycles, remote.total_cycles
        ))
    }
}

/// Locates the first divergence between two serialized reports and
/// renders a short context window around it.
fn diff_hint(want: &str, got: &str) -> String {
    let pos = want
        .bytes()
        .zip(got.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or(want.len().min(got.len()));
    let start = pos.saturating_sub(40);
    let w: String = want.chars().skip(start).take(80).collect();
    let g: String = got.chars().skip(start).take(80).collect();
    format!("reports diverge at byte {pos}: expected ...{w}... got ...{g}...")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gups_cell_passes_every_oracle() {
        let ledger = check_cell("gups", 7);
        assert!(ledger.is_ok(), "\n{}", ledger.render());
        assert_eq!(ledger.lines.len(), 9);
        assert!(ledger.render().contains("ok   baseline"));
    }

    #[test]
    fn ledger_is_deterministic() {
        let a = check_cell("masim", 3).render();
        let b = check_cell("masim", 3).render();
        assert_eq!(a, b);
    }

    #[test]
    fn dominance_holds_for_silo() {
        let wl = build("silo", Scale::Smoke, 1);
        dominance_oracle(wl.as_ref(), 1).unwrap();
    }

    #[test]
    fn diff_hint_points_at_first_divergence() {
        let hint = diff_hint("aaaabaaaa", "aaaacaaaa");
        assert!(hint.contains("byte 4"), "{hint}");
    }

    #[test]
    fn fingerprint_strips_only_fault_metrics() {
        let wl = build("gups", Scale::Smoke, 2);
        let cfg = MachineConfig::skylake_cxl(64);
        let base = run_with(&cfg, wl.as_ref(), false).unwrap();
        let fp = fingerprint(&base);
        assert!(!fp.contains("\"fault/"));
        assert!(fp.contains("\"mem/fast_used\""));
    }
}
