//! GPT-2-shaped autoregressive inference traffic.
//!
//! Token generation streams every transformer layer's weight matrices
//! (large, sequential, prefetch-friendly — high MLP) and walks the
//! growing KV cache during attention (strided, layer-interleaved). The
//! paper observes that hotness-based tiering *loses* to NoTier on gpt-2:
//! the frequently-touched weight pages are latency-tolerant streams, so
//! promoting them burns migrations for no stall reduction. PACT's
//! criticality signal sees the low stall contribution and leaves them
//! alone.

use std::collections::VecDeque;

use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{BufferedStream, Generator, InitPhase, LayoutBuilder};

/// Scaled GPT-2 inference: `layers` transformer blocks with
/// `weight_bytes_per_layer` of parameters each, generating `tokens`
/// tokens with a KV cache.
#[derive(Debug, Clone)]
pub struct Gpt2 {
    layers: usize,
    weight_bytes_per_layer: u64,
    tokens: u32,
    threads: usize,
    weight_bases: Vec<u64>,
    kv_base: u64,
    kv_bytes_per_token_layer: u64,
    embed_base: u64,
    footprint: u64,
    regions: Vec<Region>,
}

impl Gpt2 {
    /// Builds a scaled GPT-2 model.
    ///
    /// # Panics
    ///
    /// Panics on zero layers/tokens or a weight slab smaller than a line.
    pub fn new(layers: usize, weight_bytes_per_layer: u64, tokens: u32) -> Self {
        Self::with_threads(layers, weight_bytes_per_layer, tokens, 4)
    }

    /// Builds a scaled GPT-2 model with an explicit worker-thread count
    /// (GEMV rows and attention heads are partitioned across threads,
    /// as in multi-threaded CPU inference).
    ///
    /// # Panics
    ///
    /// Panics on zero layers/tokens/threads or a weight slab smaller
    /// than a line.
    pub fn with_threads(
        layers: usize,
        weight_bytes_per_layer: u64,
        tokens: u32,
        threads: usize,
    ) -> Self {
        assert!(
            layers > 0 && tokens > 0 && threads > 0,
            "need layers, tokens, threads"
        );
        assert!(weight_bytes_per_layer >= LINE_BYTES);
        let context = tokens + 256; // prompt prefix
        let kv_bytes_per_token_layer = 2 * 1024; // K+V rows, scaled
        let mut lb = LayoutBuilder::new();
        let weight_bases: Vec<u64> = (0..layers)
            .map(|i| lb.region(format!("w_layer{i}"), weight_bytes_per_layer))
            .collect();
        let kv_base = lb.region(
            "kv_cache",
            layers as u64 * context as u64 * kv_bytes_per_token_layer,
        );
        let embed_base = lb.region("embeddings", 16 << 20);
        let (footprint, regions) = lb.finish();
        Self {
            layers,
            weight_bytes_per_layer,
            tokens,
            threads,
            weight_bases,
            kv_base,
            kv_bytes_per_token_layer,
            embed_base,
            footprint,
            regions,
        }
    }

    /// The paper-suite configuration: 8 layers x 2 MiB of weights, 256
    /// prompt + 160 generated tokens (~36 MiB footprint).
    pub fn paper_scale() -> Self {
        Self::new(8, 2 << 20, 160)
    }
}

impl Workload for Gpt2 {
    fn name(&self) -> String {
        "gpt-2".into()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    /// Model load: weights and embeddings are written into memory
    /// before inference starts.
    fn prologue(&self) -> Option<Box<dyn AccessStream + '_>> {
        let mut init = InitPhase::new();
        for r in &self.regions {
            if r.name != "kv_cache" {
                init = init.zero(r.start, r.bytes);
            }
        }
        Some(init.into_stream())
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        (0..self.threads)
            .map(|t| {
                Box::new(BufferedStream::new(Gpt2Gen {
                    wl: self,
                    thread: t as u64,
                    token: 0,
                    layer: 0,
                    weight_cursor: 0,
                })) as Box<dyn AccessStream + '_>
            })
            .collect()
    }
}

struct Gpt2Gen<'w> {
    wl: &'w Gpt2,
    thread: u64,
    token: u32,
    layer: usize,
    /// Byte offset inside this thread's slice of the current layer.
    weight_cursor: u64,
}

/// Weight bytes streamed per refill step.
const WEIGHT_CHUNK: u64 = 16 * 1024;

impl Generator for Gpt2Gen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.token >= self.wl.tokens {
            return false;
        }
        let wl = self.wl;
        let threads = wl.threads as u64;
        // This thread's GEMV row slice of the layer.
        let slice = wl.weight_bytes_per_layer / threads;
        let slice_base = wl.weight_bases[self.layer] + self.thread * slice;
        if self.weight_cursor == 0 {
            // Entering a layer: attention over this thread's share of
            // the KV cache (heads are partitioned across threads).
            let past = 256 + self.token as u64; // prompt + generated so far
            let stride = wl.kv_bytes_per_token_layer;
            let mut t = self.thread;
            while t < past {
                // K and V row reads for (token t, this layer): the V row
                // address depends on the attention score of the K row.
                let row = wl.kv_base + (t * wl.layers as u64 + self.layer as u64) * stride;
                out.push_back(Access::load(row).with_work(4));
                out.push_back(Access::dependent_load(row + stride / 2).with_work(4));
                t += threads;
            }
            if self.thread == 0 {
                // Append this token's K/V rows.
                let row = wl.kv_base + (past * wl.layers as u64 + self.layer as u64) * stride;
                out.push_back(Access::store(row));
                out.push_back(Access::store(row + stride / 2));
            }
            // Activation/embedding gathers: token-dependent indirect
            // lookups (vocabulary rows, layernorm tables).
            for g in 0..8u64 {
                let tok_hash = (self.token as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(self.layer as u64 * 131 + self.thread * 17 + g * 7919);
                out.push_back(
                    Access::dependent_load(wl.embed_base + tok_hash % (16 << 20) / 64 * 64)
                        .with_work(6),
                );
            }
        }
        // Stream a chunk of this thread's weight slice (GEMV traversal).
        let end = (self.weight_cursor + WEIGHT_CHUNK).min(slice);
        let mut addr = slice_base + self.weight_cursor;
        while addr < slice_base + end {
            // ~8 cycles of FMA per 16-float line keeps a 4-thread GEMV
            // just under the fast tier's bandwidth.
            out.push_back(Access::load(addr).with_work(8));
            addr += LINE_BYTES;
        }
        self.weight_cursor = end;
        if self.weight_cursor >= slice {
            self.weight_cursor = 0;
            self.layer += 1;
            if self.layer == wl.layers {
                self.layer = 0;
                self.token += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_tiersim::AccessKind;

    fn drain(w: &Gpt2) -> Vec<Access> {
        let mut v = Vec::new();
        for mut s in w.streams() {
            while let Some(a) = s.next_access() {
                assert!(a.vaddr < w.footprint_bytes());
                v.push(a);
            }
        }
        v
    }

    #[test]
    fn trace_is_dominated_by_weight_streaming() {
        let w = Gpt2::new(4, 256 * 1024, 8);
        let t = drain(&w);
        let weight_top = w.regions()[3].start + w.regions()[3].bytes;
        let weight_accesses = t.iter().filter(|a| a.vaddr < weight_top).count();
        assert!(
            weight_accesses * 10 > t.len() * 7,
            "weights should dominate: {}/{}",
            weight_accesses,
            t.len()
        );
    }

    #[test]
    fn kv_cache_grows_with_tokens() {
        let w = Gpt2::new(2, 64 * 1024, 16);
        let t = drain(&w);
        let kv = w
            .regions()
            .iter()
            .find(|r| r.name == "kv_cache")
            .unwrap()
            .clone();
        let stores: Vec<u64> = t
            .iter()
            .filter(|a| a.kind == AccessKind::Store && kv.contains(a.vaddr))
            .map(|a| a.vaddr)
            .collect();
        // 2 stores per (token, layer): 16 tokens x 2 layers x 2
        // (thread 0 appends them).
        assert_eq!(stores.len(), 16 * 2 * 2);
    }

    #[test]
    fn trace_length_scales_with_tokens() {
        let t8 = drain(&Gpt2::new(2, 128 * 1024, 8)).len();
        let t16 = drain(&Gpt2::new(2, 128 * 1024, 16)).len();
        assert!(t16 as f64 > 1.8 * t8 as f64);
    }

    #[test]
    fn deterministic() {
        let w = Gpt2::new(2, 64 * 1024, 4);
        assert_eq!(drain(&w), drain(&w));
    }

    #[test]
    fn paper_scale_footprint_reasonable() {
        let w = Gpt2::paper_scale();
        let mb = w.footprint_bytes() >> 20;
        assert!((30..120).contains(&mb), "footprint {mb} MiB");
    }
}
