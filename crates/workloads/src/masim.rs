//! Masim: the memory-access-pattern microbenchmark from Linux's DAMON
//! subsystem, extended (as in the paper's §3) with precisely controlled
//! sequential and pointer-chasing threads.

use std::collections::VecDeque;

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{stream_rng, BufferedStream, Generator, LayoutBuilder};

/// Access pattern of one Masim thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasimPattern {
    /// Linear array traversal: independent loads, prefetch-friendly.
    Sequential,
    /// Uniform-random pointer chase: each load's address depends on the
    /// previous load (serialized, MLP ≈ 1).
    RandomChase,
    /// Uniform-random independent loads (high MLP, no spatial locality).
    RandomIndependent,
}

/// One Masim thread: a pattern over a private buffer.
#[derive(Debug, Clone, Copy)]
pub struct MasimThread {
    /// The pattern this thread executes.
    pub pattern: MasimPattern,
    /// Private buffer size in bytes.
    pub buffer_bytes: u64,
    /// Loads to execute.
    pub loads: u64,
    /// Compute cycles between loads.
    pub work: u16,
}

/// The Masim workload: a set of pattern threads over disjoint buffers.
///
/// The paper's Figure 1a configuration is [`Masim::figure1`]: one
/// sequential and one pointer-chasing read-only thread with uniform page
/// access probability and equal load counts, which bifurcates PAC (~low
/// for sequential, ~higher for random) despite identical frequencies.
#[derive(Debug, Clone)]
pub struct Masim {
    name: String,
    threads: Vec<MasimThread>,
    starts: Vec<u64>,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

impl Masim {
    /// Builds a Masim instance from explicit thread specs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or any buffer is smaller than a line.
    pub fn new(name: impl Into<String>, threads: Vec<MasimThread>, seed: u64) -> Self {
        assert!(!threads.is_empty(), "Masim needs at least one thread");
        let mut lb = LayoutBuilder::new();
        let mut starts = Vec::new();
        for (i, t) in threads.iter().enumerate() {
            assert!(t.buffer_bytes >= LINE_BYTES, "buffer too small");
            starts.push(lb.region(format!("masim_buf{i}"), t.buffer_bytes));
        }
        let (footprint, regions) = lb.finish();
        Self {
            name: name.into(),
            threads,
            starts,
            footprint,
            regions,
            seed,
        }
    }

    /// The paper's Figure 1a setup, scaled: one sequential and one
    /// pointer-chasing thread, each issuing `loads` loads over
    /// `buffer_bytes` of private memory.
    pub fn figure1(buffer_bytes: u64, loads: u64, seed: u64) -> Self {
        let mk = |pattern| MasimThread {
            pattern,
            buffer_bytes,
            loads,
            work: 2,
        };
        Self::new(
            "masim",
            vec![mk(MasimPattern::Sequential), mk(MasimPattern::RandomChase)],
            seed,
        )
    }

    /// A single-pattern Masim process (used by the colocation study of
    /// Figure 12, which pits a sequential process against a random one).
    pub fn single(
        name: impl Into<String>,
        pattern: MasimPattern,
        buffer_bytes: u64,
        loads: u64,
        seed: u64,
    ) -> Self {
        Self::new(
            name,
            vec![MasimThread {
                pattern,
                buffer_bytes,
                loads,
                work: 2,
            }],
            seed,
        )
    }
}

impl Workload for Masim {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        self.threads
            .iter()
            .zip(&self.starts)
            .enumerate()
            .map(|(i, (t, &start))| {
                let gen = MasimGen {
                    spec: *t,
                    start,
                    lines: t.buffer_bytes / LINE_BYTES,
                    cursor: 0,
                    emitted: 0,
                    rng: stream_rng(self.seed, i as u64),
                };
                Box::new(BufferedStream::new(gen)) as Box<dyn AccessStream + '_>
            })
            .collect()
    }
}

struct MasimGen {
    spec: MasimThread,
    start: u64,
    lines: u64,
    cursor: u64,
    emitted: u64,
    rng: SplitMix64,
}

impl Generator for MasimGen {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.emitted >= self.spec.loads {
            return false;
        }
        // Emit a small batch per refill to amortize dispatch.
        let batch = (self.spec.loads - self.emitted).min(64);
        for _ in 0..batch {
            let a = match self.spec.pattern {
                MasimPattern::Sequential => {
                    let line = self.cursor % self.lines;
                    self.cursor += 1;
                    Access::load(self.start + line * LINE_BYTES)
                }
                MasimPattern::RandomChase => {
                    let line = self.rng.random_range(0..self.lines);
                    Access::dependent_load(self.start + line * LINE_BYTES)
                }
                MasimPattern::RandomIndependent => {
                    let line = self.rng.random_range(0..self.lines);
                    Access::load(self.start + line * LINE_BYTES)
                }
            };
            out.push_back(a.with_work(self.spec.work));
        }
        self.emitted += batch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_tiersim::PAGE_BYTES;

    fn drain(w: &Masim) -> Vec<Vec<Access>> {
        w.streams()
            .into_iter()
            .map(|mut s| {
                let mut v = Vec::new();
                while let Some(a) = s.next_access() {
                    v.push(a);
                }
                v
            })
            .collect()
    }

    #[test]
    fn figure1_has_two_equal_threads() {
        let w = Masim::figure1(1 << 20, 1000, 7);
        let t = drain(&w);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].len(), 1000);
        assert_eq!(t[1].len(), 1000);
        // Thread 0 sequential: consecutive lines, independent.
        assert!(t[0].iter().all(|a| !a.dep));
        assert_eq!(t[0][1].vaddr - t[0][0].vaddr, LINE_BYTES);
        // Thread 1 chase: dependent.
        assert!(t[1].iter().all(|a| a.dep));
    }

    #[test]
    fn buffers_are_disjoint() {
        let w = Masim::figure1(1 << 20, 500, 7);
        let t = drain(&w);
        let max0 = t[0].iter().map(|a| a.vaddr).max().unwrap();
        let min1 = t[1].iter().map(|a| a.vaddr).min().unwrap();
        assert!(max0 < 1 << 20);
        assert!(min1 >= 1 << 20);
        assert!(w.footprint_bytes() >= 2 << 20);
    }

    #[test]
    fn streams_replay_identically() {
        let w = Masim::figure1(1 << 18, 300, 3);
        assert_eq!(drain(&w), drain(&w));
    }

    #[test]
    fn uniform_page_coverage_of_chase() {
        let w = Masim::single("m", MasimPattern::RandomChase, 64 * PAGE_BYTES, 20_000, 5);
        let t = drain(&w);
        let mut counts = vec![0u32; 64];
        for a in &t[0] {
            counts[(a.vaddr / PAGE_BYTES) as usize] += 1;
        }
        // Uniform probability: every page touched, no page dominant.
        assert!(counts.iter().all(|&c| c > 0));
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 3.0, "max {max} min {min}");
    }

    #[test]
    fn regions_cover_footprint() {
        let w = Masim::figure1(1 << 20, 10, 1);
        let total: u64 = w.regions().iter().map(|r| r.bytes).sum();
        assert_eq!(total, w.footprint_bytes());
    }
}
