//! Parameterized phased synthetic workloads.
//!
//! These drive the paper's two model-validation studies: the 96-workload
//! sweep behind Figure 2 (per-tier stall modelling) and the MLP
//! phase-stability traces of Figure 3. Each workload is a sequence of
//! phases with a chosen access pattern, working-set size, dependence
//! ratio, and compute density; sweeping those axes produces a family of
//! workloads spanning MLP ≈ 1 (pure chase) to MLP ≈ MSHRs (pure random
//! streaming).

use std::collections::VecDeque;

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{stream_rng, BufferedStream, Generator, LayoutBuilder};

/// Access pattern of one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhasePattern {
    /// Linear scan (prefetch-friendly, independent).
    Stream,
    /// Uniform-random independent loads.
    RandomIndependent,
    /// Uniform-random dependent loads (pointer chase).
    Chase,
    /// Random loads with the given fraction dependent.
    Mixed {
        /// Fraction of loads that are dependent on their predecessor.
        dep_fraction: f64,
    },
}

/// One phase of execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Pattern during the phase.
    pub pattern: PhasePattern,
    /// Loads in the phase.
    pub loads: u64,
    /// Compute cycles between loads.
    pub work: u16,
    /// Fraction of the buffer the phase touches (working set), in (0, 1].
    pub working_set: f64,
}

/// A synthetic workload executing a fixed sequence of phases over one
/// buffer.
#[derive(Debug, Clone)]
pub struct Phased {
    name: String,
    buffer_bytes: u64,
    phases: Vec<Phase>,
    repeat: u32,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

impl Phased {
    /// Builds a phased workload cycling through `phases` `repeat` times.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, the buffer is smaller than a line, or
    /// a working set is outside `(0, 1]`.
    pub fn new(
        name: impl Into<String>,
        buffer_bytes: u64,
        phases: Vec<Phase>,
        repeat: u32,
        seed: u64,
    ) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(buffer_bytes >= LINE_BYTES, "buffer too small");
        for p in &phases {
            assert!(
                p.working_set > 0.0 && p.working_set <= 1.0,
                "working_set must be in (0, 1]"
            );
        }
        let mut lb = LayoutBuilder::new();
        lb.region("phased_buf", buffer_bytes);
        let (footprint, regions) = lb.finish();
        Self {
            name: name.into(),
            buffer_bytes,
            phases,
            repeat,
            footprint,
            regions,
            seed,
        }
    }

    /// The sweep used for Figure 2: `index` in `0..96` selects a
    /// combination of dependence ratio (8 steps), compute density
    /// (4 steps), and working-set size (3 steps).
    pub fn sweep_variant(index: usize, buffer_bytes: u64, loads: u64, seed: u64) -> Phased {
        assert!(index < 96, "sweep has 96 variants");
        let dep_step = index % 8;
        let work_step = (index / 8) % 4;
        let ws_step = index / 32;
        let dep_fraction = dep_step as f64 / 7.0;
        let work = [0u16, 4, 12, 32][work_step];
        let working_set = [0.25, 0.5, 1.0][ws_step];
        let pattern = if dep_fraction == 0.0 {
            PhasePattern::RandomIndependent
        } else if dep_fraction >= 1.0 {
            PhasePattern::Chase
        } else {
            PhasePattern::Mixed { dep_fraction }
        };
        Phased::new(
            format!("sweep{index:02}"),
            buffer_bytes,
            vec![Phase {
                pattern,
                loads,
                work,
                working_set,
            }],
            1,
            seed.wrapping_add(index as u64),
        )
    }

    /// The Figure 3 trace: alternating streaming and chasing phases, so
    /// MLP is stable within phases and shifts across them.
    pub fn mlp_phases(
        buffer_bytes: u64,
        loads_per_phase: u64,
        phase_pairs: u32,
        seed: u64,
    ) -> Phased {
        Phased::new(
            "mlp-phases",
            buffer_bytes,
            vec![
                Phase {
                    // Streaming: prefetch-covered, so the Little's-law
                    // estimate (which counts prefetch bytes) overshoots.
                    pattern: PhasePattern::Stream,
                    loads: loads_per_phase,
                    work: 2,
                    working_set: 1.0,
                },
                Phase {
                    pattern: PhasePattern::RandomIndependent,
                    loads: loads_per_phase,
                    work: 2,
                    working_set: 1.0,
                },
                Phase {
                    pattern: PhasePattern::Chase,
                    loads: loads_per_phase / 4, // chase is ~4x slower per load
                    work: 2,
                    working_set: 1.0,
                },
            ],
            phase_pairs,
            seed,
        )
    }
}

impl Workload for Phased {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        let gen = PhasedGen {
            lines: self.buffer_bytes / LINE_BYTES,
            phases: self.phases.clone(),
            rounds_left: self.repeat,
            phase_idx: 0,
            emitted_in_phase: 0,
            cursor: 0,
            rng: stream_rng(self.seed, 0),
        };
        vec![Box::new(BufferedStream::new(gen))]
    }
}

struct PhasedGen {
    lines: u64,
    phases: Vec<Phase>,
    rounds_left: u32,
    phase_idx: usize,
    emitted_in_phase: u64,
    cursor: u64,
    rng: SplitMix64,
}

impl Generator for PhasedGen {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        loop {
            if self.rounds_left == 0 {
                return false;
            }
            let phase = self.phases[self.phase_idx];
            if self.emitted_in_phase >= phase.loads {
                self.emitted_in_phase = 0;
                self.phase_idx += 1;
                if self.phase_idx == self.phases.len() {
                    self.phase_idx = 0;
                    self.rounds_left -= 1;
                }
                continue;
            }
            let span = ((self.lines as f64 * phase.working_set) as u64).max(1);
            let batch = (phase.loads - self.emitted_in_phase).min(64);
            for _ in 0..batch {
                let (line, dep) = match phase.pattern {
                    PhasePattern::Stream => {
                        self.cursor = (self.cursor + 1) % span;
                        (self.cursor, false)
                    }
                    PhasePattern::RandomIndependent => (self.rng.random_range(0..span), false),
                    PhasePattern::Chase => (self.rng.random_range(0..span), true),
                    PhasePattern::Mixed { dep_fraction } => (
                        self.rng.random_range(0..span),
                        self.rng.random::<f64>() < dep_fraction,
                    ),
                };
                let mut a = Access::load(line * LINE_BYTES).with_work(phase.work);
                a.dep = dep;
                out.push_back(a);
            }
            self.emitted_in_phase += batch;
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &Phased) -> Vec<Access> {
        let mut s = w.streams().remove(0);
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            v.push(a);
        }
        v
    }

    #[test]
    fn phase_counts_and_repeat() {
        let p = Phased::new(
            "t",
            1 << 20,
            vec![
                Phase {
                    pattern: PhasePattern::Stream,
                    loads: 100,
                    work: 0,
                    working_set: 1.0,
                },
                Phase {
                    pattern: PhasePattern::Chase,
                    loads: 50,
                    work: 0,
                    working_set: 1.0,
                },
            ],
            3,
            1,
        );
        let t = drain(&p);
        assert_eq!(t.len(), 3 * 150);
        // First 100 independent, next 50 dependent.
        assert!(t[..100].iter().all(|a| !a.dep));
        assert!(t[100..150].iter().all(|a| a.dep));
    }

    #[test]
    fn working_set_bounds_addresses() {
        let p = Phased::new(
            "t",
            1 << 20,
            vec![Phase {
                pattern: PhasePattern::RandomIndependent,
                loads: 5_000,
                work: 0,
                working_set: 0.25,
            }],
            1,
            1,
        );
        let max_addr = drain(&p).iter().map(|a| a.vaddr).max().unwrap();
        assert!(max_addr < (1 << 20) / 4);
    }

    #[test]
    fn sweep_variants_are_distinct_and_valid() {
        let a = Phased::sweep_variant(0, 1 << 20, 100, 1);
        let b = Phased::sweep_variant(95, 1 << 20, 100, 1);
        assert_ne!(a.name(), b.name());
        assert!(drain(&a).iter().all(|x| !x.dep));
        assert!(drain(&b).iter().all(|x| x.dep));
    }

    #[test]
    #[should_panic(expected = "96")]
    fn sweep_rejects_out_of_range() {
        Phased::sweep_variant(96, 1 << 20, 100, 1);
    }

    #[test]
    fn mlp_phases_alternate() {
        let p = Phased::mlp_phases(1 << 20, 400, 2, 1);
        let t = drain(&p);
        assert_eq!(t.len(), 2 * (400 + 400 + 100));
        assert!(!t[0].dep);
        assert!(t[850].dep, "chase phase after stream+random");
    }

    #[test]
    fn deterministic() {
        let p = Phased::sweep_variant(42, 1 << 20, 500, 9);
        assert_eq!(drain(&p), drain(&p));
    }
}
