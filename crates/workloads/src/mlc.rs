//! Intel MLC-style bandwidth generator for the contention study
//! (Figure 11): N threads streaming over private buffers, each pushing
//! on the order of 8 GB/s of read traffic, colocated as a *background*
//! process on the fast-tier node.

use std::collections::VecDeque;

use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{BufferedStream, Generator, LayoutBuilder};

/// The Memory Latency Checker bandwidth hog.
///
/// Buffers are sized to overflow the LLC (so traffic reaches memory) but
/// small enough that first-touch places them in the fast tier, matching
/// the paper's setup of MLC hammering the local DRAM node.
#[derive(Debug, Clone)]
pub struct Mlc {
    threads: usize,
    buffer_bytes: u64,
    loads_per_thread: u64,
    work: u16,
    footprint: u64,
    regions: Vec<Region>,
    background: bool,
}

impl Mlc {
    /// Builds an MLC instance with `threads` streaming threads.
    ///
    /// `work` spaces out loads to tune per-thread bandwidth: 0 saturates;
    /// the default [`Mlc::paper_thread`] spacing approximates one
    /// thread ≈ 8 GB/s on the simulated 2.2 GHz core.
    pub fn new(threads: usize, buffer_bytes: u64, loads_per_thread: u64, work: u16) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(buffer_bytes >= LINE_BYTES);
        let mut lb = LayoutBuilder::new();
        for i in 0..threads {
            lb.region(format!("mlc_buf{i}"), buffer_bytes);
        }
        let (footprint, regions) = lb.finish();
        Self {
            threads,
            buffer_bytes,
            loads_per_thread,
            work,
            footprint,
            regions,
            background: true,
        }
    }

    /// One MLC thread ≈ 8 GB/s: a 64-byte line every ~17.6 cycles at
    /// 2.2 GHz, i.e. ~16 work cycles between loads.
    pub fn paper_thread(threads: usize, loads_per_thread: u64) -> Self {
        Self::new(threads, 4 << 20, loads_per_thread, 16)
    }

    /// The fleet-cell antagonist: the same streaming pattern as the
    /// Figure 11 hog, but run as a *foreground* tenant named
    /// `mlc-hog`, so its bounded access stream counts toward the run
    /// and its bandwidth is attributed to its own tenant lane in
    /// multi-tenant cells.
    pub fn hog(threads: usize, buffer_bytes: u64, loads_per_thread: u64) -> Self {
        let mut m = Self::new(threads, buffer_bytes, loads_per_thread, 0);
        m.background = false;
        m
    }
}

impl Workload for Mlc {
    fn name(&self) -> String {
        if self.background {
            format!("mlc-{}t", self.threads)
        } else {
            "mlc-hog".to_string()
        }
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn is_background(&self) -> bool {
        self.background
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        (0..self.threads)
            .map(|i| {
                Box::new(BufferedStream::new(MlcGen {
                    base: i as u64 * self.buffer_bytes,
                    lines: self.buffer_bytes / LINE_BYTES,
                    remaining: self.loads_per_thread,
                    cursor: 0,
                    work: self.work,
                })) as Box<dyn AccessStream + '_>
            })
            .collect()
    }
}

struct MlcGen {
    base: u64,
    lines: u64,
    remaining: u64,
    cursor: u64,
    work: u16,
}

impl Generator for MlcGen {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        let batch = self.remaining.min(64);
        for _ in 0..batch {
            out.push_back(Access::load(self.base + self.cursor * LINE_BYTES).with_work(self.work));
            self.cursor = (self.cursor + 1) % self.lines;
        }
        self.remaining -= batch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_background() {
        assert!(Mlc::paper_thread(1, 100).is_background());
    }

    #[test]
    fn hog_is_a_foreground_tenant() {
        let h = Mlc::hog(2, 1 << 20, 100);
        assert!(!h.is_background());
        assert_eq!(h.name(), "mlc-hog");
    }

    #[test]
    fn per_thread_buffers_are_private() {
        let m = Mlc::new(2, 1 << 20, 100, 0);
        let mut streams = m.streams();
        let a = streams[0].next_access().unwrap();
        let b = streams[1].next_access().unwrap();
        assert_eq!(a.vaddr, 0);
        assert_eq!(b.vaddr, 1 << 20);
    }

    #[test]
    fn stream_wraps_buffer() {
        let m = Mlc::new(1, 2 * LINE_BYTES, 5, 0);
        let mut s = m.streams().remove(0);
        let addrs: Vec<u64> = std::iter::from_fn(|| s.next_access().map(|a| a.vaddr)).collect();
        assert_eq!(addrs, vec![0, 64, 0, 64, 0]);
    }

    #[test]
    fn work_paces_bandwidth() {
        let m = Mlc::paper_thread(1, 10);
        let mut s = m.streams().remove(0);
        assert_eq!(s.next_access().unwrap().work, 16);
    }
}
