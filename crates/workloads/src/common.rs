//! Shared workload-construction helpers: address-space layout, Zipf
//! sampling, and a buffered stream adapter for incremental generators.

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, PAGE_BYTES};

/// Allocates named, page-aligned regions in a workload's virtual address
/// space and produces the matching [`Region`] list for object-granular
/// policies (Soar).
#[derive(Debug, Default)]
pub struct LayoutBuilder {
    cursor: u64,
    regions: Vec<Region>,
}

impl LayoutBuilder {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `bytes` (rounded up to a whole page) under `name`;
    /// returns the region's start address.
    pub fn region(&mut self, name: impl Into<String>, bytes: u64) -> u64 {
        let start = self.cursor;
        let len = bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        self.regions.push(Region::new(name, start, len));
        self.cursor += len;
        start
    }

    /// Total footprint in bytes and the region list.
    pub fn finish(self) -> (u64, Vec<Region>) {
        (self.cursor.max(PAGE_BYTES), self.regions)
    }
}

/// A Zipf(θ) sampler over `{0, .., n-1}` using the classic two-constant
/// approximation (Gray et al.), the standard YCSB key-chooser.
///
/// θ = 0.99 is YCSB's default skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or θ is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; integral approximation beyond.
        const EXACT: u64 = 10_000;
        let exact_n = n.min(EXACT);
        let mut z = 0.0;
        for i in 1..=exact_n {
            z += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-θ dx from EXACT to n.
            z += ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        z
    }

    /// Draws one rank; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Approximate probability mass of rank `i` (for tests/analysis).
    pub fn mass(&self, i: u64) -> f64 {
        let _ = self.zeta2;
        1.0 / ((i + 1) as f64).powf(self.theta) / self.zetan
    }
}

/// Adapter turning an incremental generator into an [`AccessStream`]:
/// the generator refills a buffer one work unit at a time, so large
/// workloads never materialize full traces.
pub struct BufferedStream<G> {
    generator: G,
    buf: std::collections::VecDeque<Access>,
}

/// An incremental access generator: each [`refill`](Self::refill) call
/// appends the accesses of one unit of algorithmic work (one vertex, one
/// query, one stencil row) and returns `false` when the work is done.
pub trait Generator {
    /// Emits the next unit of work into `out`; returns `false` when
    /// exhausted (nothing may be appended in that case).
    fn refill(&mut self, out: &mut std::collections::VecDeque<Access>) -> bool;
}

impl<G: Generator> BufferedStream<G> {
    /// Wraps a generator.
    pub fn new(generator: G) -> Self {
        Self {
            generator,
            buf: std::collections::VecDeque::new(),
        }
    }
}

impl<G: Generator> AccessStream for BufferedStream<G> {
    fn next_access(&mut self) -> Option<Access> {
        while self.buf.is_empty() {
            if !self.generator.refill(&mut self.buf) {
                return None;
            }
        }
        self.buf.pop_front()
    }
}

/// A prologue generator: sequential line-granular reads ("load the
/// input data") and writes ("allocate and zero the state arrays") over
/// whole regions, in the order they were added. This is what performs a
/// process's first touches in allocation order, the behaviour that
/// strands late-allocated hot state in the slow tier under first-touch
/// placement.
#[derive(Debug, Clone, Default)]
pub struct InitPhase {
    ops: Vec<(u64, u64, bool)>,
    op: usize,
    line: u64,
}

impl InitPhase {
    /// Creates an empty phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sequential read pass over `[start, start + bytes)`.
    pub fn read(mut self, start: u64, bytes: u64) -> Self {
        self.ops.push((start, bytes, false));
        self
    }

    /// Appends a sequential write (zeroing/population) pass.
    pub fn zero(mut self, start: u64, bytes: u64) -> Self {
        self.ops.push((start, bytes, true));
        self
    }

    /// Wraps the phase into a boxed stream.
    pub fn into_stream<'a>(self) -> Box<dyn AccessStream + 'a> {
        Box::new(BufferedStream::new(self))
    }
}

impl Generator for InitPhase {
    fn refill(&mut self, out: &mut std::collections::VecDeque<Access>) -> bool {
        use pact_tiersim::LINE_BYTES;
        loop {
            let Some(&(start, bytes, write)) = self.ops.get(self.op) else {
                return false;
            };
            let lines = bytes.div_ceil(LINE_BYTES);
            if self.line >= lines {
                self.op += 1;
                self.line = 0;
                continue;
            }
            let batch = (lines - self.line).min(64);
            for i in 0..batch {
                let addr = start + (self.line + i) * LINE_BYTES;
                if write {
                    out.push_back(Access::store(addr));
                } else {
                    out.push_back(Access::load(addr).with_work(1));
                }
            }
            self.line += batch;
            return true;
        }
    }
}

/// Deterministic pseudo-random permutation of `0..n` (cycle-walking
/// multiplicative hash). Real key-value stores hash their keys, so the
/// popular (low-rank) keys scatter uniformly across the value heap
/// instead of clustering at its start — without this, first-touch
/// placement would trivially capture the entire hot set.
pub fn scramble(rank: u64, n: u64) -> u64 {
    assert!(n > 0);
    let mask = n.next_power_of_two() - 1;
    let mut x = rank;
    loop {
        // Each step is a bijection on the power-of-two domain (xorshift
        // and odd multiplication mod 2^k), so cycle-walking terminates
        // and the whole map is a permutation of 0..n.
        x ^= x >> 7;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
        x ^= x >> 5;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) & mask;
        if x < n {
            return x;
        }
    }
}

/// Deterministic per-(seed, stream) RNG used across workloads so every
/// run of a workload emits the identical access sequence.
pub fn stream_rng(seed: u64, stream: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_page_aligned_and_disjoint() {
        let mut lb = LayoutBuilder::new();
        let a = lb.region("a", 100);
        let b = lb.region("b", PAGE_BYTES + 1);
        let (fp, regions) = lb.finish();
        assert_eq!(a, 0);
        assert_eq!(b, PAGE_BYTES);
        assert_eq!(fp, PAGE_BYTES + 2 * PAGE_BYTES);
        assert_eq!(regions.len(), 2);
        assert!(regions[0].contains(0) && !regions[0].contains(PAGE_BYTES));
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(100_000, 0.99);
        let mut rng = stream_rng(1, 0);
        let mut head = 0u64;
        const DRAWS: u64 = 50_000;
        for _ in 0..DRAWS {
            let r = z.sample(&mut rng);
            assert!(r < 100_000);
            if r < 100 {
                head += 1;
            }
        }
        // Under Zipf(0.99), the top 0.1% of keys draw a large share.
        let frac = head as f64 / DRAWS as f64;
        assert!(frac > 0.25, "head fraction {frac}");
    }

    #[test]
    fn zipf_covers_tail() {
        let z = Zipf::new(1000, 0.5);
        let mut rng = stream_rng(2, 0);
        let mut seen_tail = false;
        for _ in 0..20_000 {
            if z.sample(&mut rng) > 500 {
                seen_tail = true;
                break;
            }
        }
        assert!(seen_tail);
    }

    #[test]
    fn zipf_mass_decreases() {
        let z = Zipf::new(1000, 0.9);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(100));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        Zipf::new(10, 1.0);
    }

    #[test]
    fn buffered_stream_drains_generator() {
        struct Counter(u32);
        impl Generator for Counter {
            fn refill(&mut self, out: &mut std::collections::VecDeque<Access>) -> bool {
                if self.0 == 0 {
                    return false;
                }
                self.0 -= 1;
                out.push_back(Access::load(self.0 as u64 * 64));
                out.push_back(Access::load(self.0 as u64 * 64 + 8));
                true
            }
        }
        let mut s = BufferedStream::new(Counter(3));
        let mut n = 0;
        while s.next_access().is_some() {
            n += 1;
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn scramble_is_a_permutation() {
        let n = 1000;
        let mut seen = vec![false; n as usize];
        for r in 0..n {
            let k = scramble(r, n);
            assert!(k < n);
            assert!(!seen[k as usize], "collision at rank {r}");
            seen[k as usize] = true;
        }
        // Hot ranks scatter: the top-10 keys are not contiguous.
        let hot: Vec<u64> = (0..10).map(|r| scramble(r, n)).collect();
        let spread = hot.iter().max().unwrap() - hot.iter().min().unwrap();
        assert!(spread > 100, "hot keys clustered: {hot:?}");
    }

    #[test]
    fn stream_rng_is_deterministic_and_distinct() {
        let mut a = stream_rng(42, 0);
        let mut b = stream_rng(42, 0);
        let mut c = stream_rng(42, 1);
        let (x, y, z): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
