//! # pact-workloads — the workload suite of the PACT reproduction
//!
//! Implements every application the paper (ASPLOS '26) evaluates or
//! profiles, as [`Workload`](pact_tiersim::Workload) implementations
//! that run real algorithms and emit their memory accesses against the
//! simulated address space:
//!
//! * **Microbenchmarks** (§3 motivation): [`Masim`] pattern threads and
//!   phase-alternating [`Gups`];
//! * **Graph analytics** ([`graph`]): Kronecker / uniform / power-law
//!   generators with BFS, betweenness centrality, SSSP, PageRank, and
//!   triangle-counting kernels (the GAPBS substitute);
//! * **ML inference**: [`Gpt2`]-shaped weight streaming + KV-cache walks;
//! * **In-memory stores**: [`KvStore`] (Redis under YCSB) and [`Silo`]
//!   (B+-tree OLTP);
//! * **SPEC CPU 2017 shapes**: [`Bwaves`], [`Deepsjeng`], [`Xz`];
//! * **Contention**: the [`Mlc`] bandwidth hog (Figure 11);
//! * **Model validation**: [`Phased`] synthetics for the 96-workload
//!   stall-model study (Figure 2) and MLP phase traces (Figure 3).
//!
//! The [`suite`] module names the paper's 12-workload evaluation set.
//!
//! # Example
//!
//! ```
//! use pact_tiersim::{FirstTouch, Machine, MachineConfig, Workload};
//! use pact_workloads::suite::{build, Scale};
//!
//! let wl = build("silo", Scale::Smoke, 42);
//! let fast_pages = wl.footprint_bytes() / 4096 / 2; // 1:1 tier ratio
//! let machine = Machine::new(MachineConfig::skylake_cxl(fast_pages)).unwrap();
//! let report = machine.run(wl.as_ref(), &mut FirstTouch::new());
//! assert!(report.counters.total_misses() > 0);
//! ```

#![warn(missing_docs)]

mod common;
mod gpt2;
pub mod graph;
mod gups;
mod kvstore;
mod masim;
mod mlc;
mod phased;
mod silo;
mod spec;
pub mod suite;
mod zipfdrift;

pub use common::{BufferedStream, Generator, LayoutBuilder, Zipf};
pub use gpt2::Gpt2;
pub use gups::Gups;
pub use kvstore::{KvStore, YcsbMix};
pub use masim::{Masim, MasimPattern, MasimThread};
pub use mlc::Mlc;
pub use phased::{Phase, PhasePattern, Phased};
pub use silo::Silo;
pub use spec::{Bwaves, Deepsjeng, Xz};
pub use zipfdrift::ZipfDrift;
