//! SPEC CPU 2017-shaped kernels: 603.bwaves_s, 631.deepsjeng_s, and
//! 657.xz_s.
//!
//! Each reproduces the memory *shape* of its SPEC counterpart at
//! simulation scale: bwaves is a blocked multi-array stencil (pure
//! streaming, very high MLP), deepsjeng is compute-heavy tree search
//! with random transposition-table probes, and xz is LZMA-style match
//! finding mixing a sequential input window with dependent hash-chain
//! walks.

use std::collections::VecDeque;

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{stream_rng, BufferedStream, Generator, InitPhase, LayoutBuilder};

// --- 603.bwaves ---------------------------------------------------------

/// A bwaves-shaped stencil: per sweep, read three neighbor elements from
/// each of several input grids and write one output grid, row by row.
#[derive(Debug, Clone)]
pub struct Bwaves {
    grid_bytes: u64,
    sweeps: u32,
    grids: Vec<u64>,
    out_base: u64,
    footprint: u64,
    regions: Vec<Region>,
}

impl Bwaves {
    /// Builds a stencil over four input grids of `grid_bytes` each plus
    /// an output grid, swept `sweeps` times.
    pub fn new(grid_bytes: u64, sweeps: u32) -> Self {
        assert!(grid_bytes >= LINE_BYTES);
        let mut lb = LayoutBuilder::new();
        let grids: Vec<u64> = (0..4)
            .map(|i| lb.region(format!("grid{i}"), grid_bytes))
            .collect();
        let out_base = lb.region("grid_out", grid_bytes);
        let (footprint, regions) = lb.finish();
        Self {
            grid_bytes,
            sweeps,
            grids,
            out_base,
            footprint,
            regions,
        }
    }

    /// The paper-suite configuration (~40 MiB, 3 sweeps).
    pub fn paper_scale() -> Self {
        Self::new(8 << 20, 3)
    }
}

impl Workload for Bwaves {
    fn name(&self) -> String {
        "603.bwaves".into()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        vec![Box::new(BufferedStream::new(BwavesGen {
            wl: self,
            sweep: 0,
            cursor: 0,
        }))]
    }
}

struct BwavesGen<'w> {
    wl: &'w Bwaves,
    sweep: u32,
    cursor: u64,
}

impl Generator for BwavesGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.sweep >= self.wl.sweeps {
            return false;
        }
        // One refill = one line across all grids.
        let line = self.cursor;
        for &g in &self.wl.grids {
            out.push_back(Access::load(g + line * LINE_BYTES).with_work(5));
        }
        out.push_back(Access::store(self.wl.out_base + line * LINE_BYTES));
        self.cursor += 1;
        if self.cursor * LINE_BYTES >= self.wl.grid_bytes {
            self.cursor = 0;
            self.sweep += 1;
        }
        true
    }
}

// --- 631.deepsjeng ------------------------------------------------------

/// A deepsjeng-shaped game-tree search: heavy compute on a small hot
/// state with random transposition-table probes and occasional stores.
#[derive(Debug, Clone)]
pub struct Deepsjeng {
    tt_bytes: u64,
    nodes: u64,
    threads: usize,
    tt_base: u64,
    stack_base: u64,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

impl Deepsjeng {
    /// Builds a search over a `tt_bytes` transposition table, visiting
    /// `nodes` tree nodes across `threads` threads.
    pub fn new(tt_bytes: u64, nodes: u64, threads: usize, seed: u64) -> Self {
        assert!(tt_bytes >= LINE_BYTES && threads > 0);
        let mut lb = LayoutBuilder::new();
        let tt_base = lb.region("transposition_table", tt_bytes);
        let stack_base = lb.region("search_stack", 1 << 20);
        let (footprint, regions) = lb.finish();
        Self {
            tt_bytes,
            nodes,
            threads,
            tt_base,
            stack_base,
            footprint,
            regions,
            seed,
        }
    }

    /// The paper-suite configuration (~24 MiB table).
    pub fn paper_scale(nodes: u64, seed: u64) -> Self {
        Self::new(24 << 20, nodes, 4, seed)
    }
}

impl Workload for Deepsjeng {
    fn name(&self) -> String {
        "631.deepsjeng".into()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    /// Transposition-table allocation.
    fn prologue(&self) -> Option<Box<dyn AccessStream + '_>> {
        Some(
            InitPhase::new()
                .zero(self.tt_base, self.tt_bytes)
                .into_stream(),
        )
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        let per_thread = self.nodes / self.threads as u64;
        (0..self.threads)
            .map(|i| {
                Box::new(BufferedStream::new(DeepsjengGen {
                    wl: self,
                    remaining: per_thread,
                    depth: 0,
                    rng: stream_rng(self.seed, i as u64),
                })) as Box<dyn AccessStream + '_>
            })
            .collect()
    }
}

struct DeepsjengGen<'w> {
    wl: &'w Deepsjeng,
    remaining: u64,
    depth: u64,
    rng: SplitMix64,
}

impl Generator for DeepsjengGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let wl = self.wl;
        // Evaluate a node: lots of compute over the (cache-hot) stack.
        self.depth = (self.depth + 1) % 64;
        out.push_back(Access::load(wl.stack_base + self.depth * LINE_BYTES).with_work(60));
        // Transposition-table probe: random line, address from hash
        // (independent), verify+maybe store.
        let lines = wl.tt_bytes / LINE_BYTES;
        let probe = self.rng.random_range(0..lines);
        out.push_back(Access::load(wl.tt_base + probe * LINE_BYTES).with_work(20));
        if self.rng.random::<f64>() < 0.3 {
            out.push_back(Access::store(wl.tt_base + probe * LINE_BYTES));
        }
        true
    }
}

// --- 657.xz --------------------------------------------------------------

/// An xz-shaped LZMA match finder: sequential input scan, random hash
/// head lookups, and dependent hash-chain walks through the history
/// window.
#[derive(Debug, Clone)]
pub struct Xz {
    window_bytes: u64,
    input_bytes: u64,
    window_base: u64,
    hash_base: u64,
    input_base: u64,
    hash_entries: u64,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

impl Xz {
    /// Builds a compressor with a `window_bytes` history window over
    /// `input_bytes` of input.
    pub fn new(window_bytes: u64, input_bytes: u64, seed: u64) -> Self {
        assert!(window_bytes >= LINE_BYTES && input_bytes >= LINE_BYTES);
        let hash_entries = (window_bytes / 32).next_power_of_two();
        let mut lb = LayoutBuilder::new();
        let window_base = lb.region("history_window", window_bytes);
        let hash_base = lb.region("hash_chains", hash_entries * 8);
        let input_base = lb.region("input", input_bytes);
        let (footprint, regions) = lb.finish();
        Self {
            window_bytes,
            input_bytes,
            window_base,
            hash_base,
            input_base,
            hash_entries,
            footprint,
            regions,
            seed,
        }
    }

    /// The paper-suite configuration (~48 MiB).
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(24 << 20, 16 << 20, seed)
    }
}

impl Workload for Xz {
    fn name(&self) -> String {
        "657.xz".into()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    /// Input buffering: the file is read into memory first.
    fn prologue(&self) -> Option<Box<dyn AccessStream + '_>> {
        Some(
            InitPhase::new()
                .zero(self.input_base, self.input_bytes)
                .into_stream(),
        )
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        vec![Box::new(BufferedStream::new(XzGen {
            wl: self,
            cursor: 0,
            rng: stream_rng(self.seed, 0),
        }))]
    }
}

struct XzGen<'w> {
    wl: &'w Xz,
    cursor: u64,
    rng: SplitMix64,
}

impl Generator for XzGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        let wl = self.wl;
        if self.cursor * LINE_BYTES >= wl.input_bytes {
            return false;
        }
        // Read the next input line (sequential).
        out.push_back(Access::load(wl.input_base + self.cursor * LINE_BYTES).with_work(8));
        // Hash-head lookup (random, independent).
        let h = self.rng.random_range(0..wl.hash_entries);
        out.push_back(Access::load(wl.hash_base + h * 8).with_work(4));
        // Chain walk into the history window: dependent match checks.
        let walks = 1 + (self.rng.random_range(0..4u32));
        let window_lines = wl.window_bytes / LINE_BYTES;
        for _ in 0..walks {
            let pos = self.rng.random_range(0..window_lines);
            out.push_back(Access::dependent_load(wl.window_base + pos * LINE_BYTES).with_work(12));
        }
        // Append the line to the history window (store).
        let wpos = self.cursor % window_lines;
        out.push_back(Access::store(wl.window_base + wpos * LINE_BYTES));
        self.cursor += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_tiersim::AccessKind;

    fn drain(streams: Vec<Box<dyn AccessStream + '_>>, fp: u64) -> Vec<Access> {
        let mut all = Vec::new();
        for mut s in streams {
            while let Some(a) = s.next_access() {
                assert!(a.vaddr < fp);
                all.push(a);
            }
        }
        all
    }

    #[test]
    fn bwaves_is_pure_streaming() {
        let w = Bwaves::new(1 << 20, 2);
        let t = drain(w.streams(), w.footprint_bytes());
        assert!(t.iter().all(|a| !a.dep));
        let stores = t.iter().filter(|a| a.kind == AccessKind::Store).count();
        let loads = t.len() - stores;
        assert_eq!(loads, 4 * stores); // 4 reads per write
    }

    #[test]
    fn bwaves_sweeps_whole_grids() {
        let w = Bwaves::new(1 << 18, 1);
        let t = drain(w.streams(), w.footprint_bytes());
        let lines = (1 << 18) / LINE_BYTES;
        assert_eq!(t.len() as u64, lines * 5);
    }

    #[test]
    fn deepsjeng_is_compute_heavy() {
        let w = Deepsjeng::new(1 << 20, 1_000, 2, 1);
        let t = drain(w.streams(), w.footprint_bytes());
        let avg_work: f64 = t.iter().map(|a| a.work as f64).sum::<f64>() / t.len() as f64;
        assert!(avg_work > 20.0, "avg work {avg_work}");
    }

    #[test]
    fn xz_mixes_patterns() {
        let w = Xz::new(1 << 20, 1 << 18, 2);
        let t = drain(w.streams(), w.footprint_bytes());
        let deps = t.iter().filter(|a| a.dep).count();
        let stores = t.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert!(deps > 1_000);
        assert!(stores > 1_000);
        assert!(t.len() > 4 * stores); // loads dominate
    }

    #[test]
    fn all_are_deterministic() {
        let w = Xz::new(1 << 18, 1 << 16, 3);
        assert_eq!(
            drain(w.streams(), w.footprint_bytes()),
            drain(w.streams(), w.footprint_bytes())
        );
        let d = Deepsjeng::new(1 << 18, 500, 2, 3);
        assert_eq!(
            drain(d.streams(), d.footprint_bytes()).len(),
            drain(d.streams(), d.footprint_bytes()).len()
        );
    }
}
