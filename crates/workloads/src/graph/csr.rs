//! Compressed-sparse-row graph representation.

use super::gen::EdgeList;

/// A CSR graph: `offsets[v]..offsets[v+1]` indexes `neighbors`.
///
/// Built from an [`EdgeList`] with optional symmetrization; self-loops
/// and duplicate edges are removed and adjacency lists are sorted (which
/// the triangle-counting kernel requires).
#[derive(Debug, Clone)]
pub struct Csr {
    n: u32,
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from `edges`. When `symmetric` is true every edge is
    /// inserted in both directions (GAPBS kernels run on symmetrized
    /// graphs).
    pub fn from_edges(el: &EdgeList, symmetric: bool) -> Self {
        let n = el.n as usize;
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(el.edges.len() * 2);
        for &(s, d) in &el.edges {
            if s == d {
                continue;
            }
            pairs.push((s, d));
            if symmetric {
                pairs.push((d, s));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u64; n + 1];
        for &(s, _) in &pairs {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors = pairs.into_iter().map(|(_, d)| d).collect();
        Self {
            n: el.n,
            offsets,
            neighbors,
        }
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> u32 {
        self.n
    }

    /// Directed edge count after cleanup.
    pub fn num_edges(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Index of `v`'s first neighbor in the neighbor array.
    pub fn offset(&self, v: u32) -> u64 {
        self.offsets[v as usize]
    }

    /// Sorted adjacency list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The vertex with the largest out-degree (a stable BFS/BC source).
    pub fn max_degree_vertex(&self) -> u32 {
        (0..self.n).max_by_key(|&v| self.degree(v)).unwrap_or(0)
    }

    /// `count` distinct source vertices with non-zero degree, chosen
    /// deterministically and spread across the ID space.
    pub fn pick_sources(&self, count: usize) -> Vec<u32> {
        let mut sources = Vec::with_capacity(count);
        let mut v = 0u64;
        let stride = (self.n as u64 / (count as u64 + 1)).max(1);
        while sources.len() < count {
            let cand = (v * stride + stride / 2) % self.n as u64;
            let cand = cand as u32;
            if self.degree(cand) > 0 && !sources.contains(&cand) {
                sources.push(cand);
            }
            v += 1;
            if v > 4 * self.n as u64 {
                break; // pathological graph: give up gracefully
            }
        }
        sources
    }
}

#[cfg(test)]
mod tests {
    use super::super::gen::{kronecker, EdgeList};
    use super::*;

    fn tiny() -> EdgeList {
        EdgeList {
            n: 4,
            edges: vec![(0, 1), (0, 2), (1, 2), (2, 3), (0, 1), (3, 3)],
        }
    }

    #[test]
    fn builds_directed_csr() {
        let g = Csr::from_edges(&tiny(), false);
        assert_eq!(g.num_vertices(), 4);
        // (0,1),(0,2),(1,2),(2,3); dup and self-loop dropped.
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn symmetrization_doubles_edges() {
        let g = Csr::from_edges(&tiny(), true);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let g = Csr::from_edges(&kronecker(10, 8, 5), true);
        for v in 0..g.num_vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn offsets_are_consistent() {
        let g = Csr::from_edges(&kronecker(8, 4, 1), false);
        let mut total = 0;
        for v in 0..g.num_vertices() {
            assert_eq!(
                g.offset(v) + g.degree(v),
                g.offset(v) + g.neighbors(v).len() as u64
            );
            total += g.degree(v);
        }
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn sources_are_distinct_and_valid() {
        let g = Csr::from_edges(&kronecker(10, 8, 2), true);
        let s = g.pick_sources(4);
        assert_eq!(s.len(), 4);
        for &v in &s {
            assert!(g.degree(v) > 0);
        }
        let mut d = s.clone();
        d.dedup();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn max_degree_vertex_is_max() {
        let g = Csr::from_edges(&tiny(), true);
        let m = g.max_degree_vertex();
        for v in 0..4 {
            assert!(g.degree(v) <= g.degree(m));
        }
    }
}
