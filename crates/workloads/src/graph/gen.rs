//! Synthetic graph generators: Kronecker (R-MAT), uniform random, and
//! power-law ("twitter-like") graphs.
//!
//! These stand in for the GAP Benchmark Suite inputs the paper uses
//! (`-kron`, `-urand`, `-twitter`): the Kronecker generator follows the
//! Graph500/GAPBS R-MAT recipe, and the power-law generator produces the
//! heavy-tailed degree distribution that makes the real Twitter graph
//! interesting for tiering (hub pages with serialized access).

use pact_stats::SplitMix64;

use crate::common::Zipf;

/// An edge list over vertices `0..n`.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Vertex count.
    pub n: u32,
    /// Directed edges (may contain duplicates and self-loops; the CSR
    /// builder cleans them up).
    pub edges: Vec<(u32, u32)>,
}

/// Generates a Kronecker (R-MAT) graph with `2^scale` vertices and
/// `edge_factor * 2^scale` directed edges, using the Graph500
/// probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
pub fn kronecker(scale: u32, edge_factor: u32, seed: u64) -> EdgeList {
    assert!(scale > 0 && scale < 31, "scale out of range");
    let n = 1u32 << scale;
    let m = n as u64 * edge_factor as u64;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    for _ in 0..m {
        let mut src = 0u32;
        let mut dst = 0u32;
        for bit in (0..scale).rev() {
            let r: f64 = rng.random();
            let (si, di) = if r < A {
                (0, 0)
            } else if r < A + B {
                (0, 1)
            } else if r < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            src |= si << bit;
            dst |= di << bit;
        }
        edges.push((src, dst));
    }
    EdgeList { n, edges }
}

/// Generates a uniform random graph: `m` directed edges with endpoints
/// drawn uniformly from `0..n` (the GAPBS `-urand` input).
pub fn uniform(n: u32, m: u64, seed: u64) -> EdgeList {
    assert!(n > 1, "need at least two vertices");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let edges = (0..m)
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    EdgeList { n, edges }
}

/// Generates a power-law graph: edge destinations drawn Zipf(θ) over the
/// vertex set, sources uniform. θ near 0.9 yields the hub-dominated
/// degree distribution of social graphs like Twitter.
pub fn power_law(n: u32, m: u64, theta: f64, seed: u64) -> EdgeList {
    assert!(n > 1, "need at least two vertices");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let zipf = Zipf::new(n as u64, theta);
    let edges = (0..m)
        .map(|_| {
            let src = rng.random_range(0..n);
            let dst = zipf.sample(&mut rng) as u32;
            (src, dst)
        })
        .collect();
    EdgeList { n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degree_counts(el: &EdgeList) -> Vec<u32> {
        let mut deg = vec![0u32; el.n as usize];
        for &(_, d) in &el.edges {
            deg[d as usize] += 1;
        }
        deg
    }

    #[test]
    fn kronecker_shape() {
        let g = kronecker(10, 8, 1);
        assert_eq!(g.n, 1024);
        assert_eq!(g.edges.len(), 8192);
        assert!(g.edges.iter().all(|&(s, d)| s < g.n && d < g.n));
    }

    #[test]
    fn kronecker_is_skewed() {
        let g = kronecker(12, 16, 2);
        let mut deg = degree_counts(&g);
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = deg[..deg.len() / 100].iter().map(|&d| d as u64).sum();
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.10,
            "R-MAT should concentrate degree: top1% holds {top1pct}/{total}"
        );
    }

    #[test]
    fn uniform_is_not_skewed() {
        let g = uniform(4096, 65_536, 3);
        let deg = degree_counts(&g);
        let max = *deg.iter().max().unwrap();
        assert!(max < 64, "uniform max degree should be modest, got {max}");
    }

    #[test]
    fn power_law_has_hubs() {
        let g = power_law(4096, 65_536, 0.9, 4);
        let deg = degree_counts(&g);
        let max = *deg.iter().max().unwrap() as u64;
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        assert!(
            max as f64 / total as f64 > 0.01,
            "hub should absorb >1% of edges, got {max}/{total}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(kronecker(8, 4, 7).edges, kronecker(8, 4, 7).edges);
        assert_eq!(uniform(100, 500, 7).edges, uniform(100, 500, 7).edges);
        assert_eq!(
            power_law(100, 500, 0.8, 7).edges,
            power_law(100, 500, 0.8, 7).edges
        );
    }
}
