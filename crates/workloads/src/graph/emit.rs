//! Shared access-emission conventions for graph kernels.
//!
//! Kernels run the real algorithm on the host graph while emitting the
//! memory accesses the algorithm would perform against the simulated
//! address space. Conventions:
//!
//! * array scans (adjacency lists, weight arrays) emit **one load per
//!   cache line** with `work` covering the per-element compute — the
//!   simulator models memory at line granularity anyway;
//! * the first line of an adjacency scan is *dependent* (its address
//!   comes from the just-loaded offset);
//! * per-neighbor accesses into vertex-state arrays are dependent for
//!   the first neighbor of each adjacency-list line (its index arrives
//!   with that line load) and independent for the rest, which is how
//!   out-of-order cores actually overlap them.

use std::collections::VecDeque;

use pact_tiersim::{Access, LINE_BYTES};

/// Neighbors (4-byte IDs) per cache line.
pub const IDS_PER_LINE: u64 = LINE_BYTES / 4;

/// Emits a load of element `idx` of an 8-byte-element array at `base`.
#[inline]
pub fn load_elem8(out: &mut VecDeque<Access>, base: u64, idx: u64, dep: bool, work: u16) {
    let mut a = Access::load(base + idx * 8).with_work(work);
    a.dep = dep;
    out.push_back(a);
}

/// Emits a load of element `idx` of a 4-byte-element array at `base`.
#[inline]
pub fn load_elem4(out: &mut VecDeque<Access>, base: u64, idx: u64, dep: bool, work: u16) {
    let mut a = Access::load(base + idx * 4).with_work(work);
    a.dep = dep;
    out.push_back(a);
}

/// Emits a store to element `idx` of an 8-byte-element array at `base`.
#[inline]
pub fn store_elem8(out: &mut VecDeque<Access>, base: u64, idx: u64) {
    out.push_back(Access::store(base + idx * 8));
}

/// Emits a store to element `idx` of a 4-byte-element array at `base`.
#[inline]
pub fn store_elem4(out: &mut VecDeque<Access>, base: u64, idx: u64) {
    out.push_back(Access::store(base + idx * 4));
}

/// Emits the line-granular loads of a scan over elements
/// `start..start + count` of a 4-byte-element array at `base`. The first
/// line is dependent when `first_dep` is set.
pub fn scan_lines4(
    out: &mut VecDeque<Access>,
    base: u64,
    start: u64,
    count: u64,
    first_dep: bool,
    work_per_line: u16,
) {
    if count == 0 {
        return;
    }
    let first_line = (base + start * 4) / LINE_BYTES;
    let last_line = (base + (start + count - 1) * 4) / LINE_BYTES;
    for (i, line) in (first_line..=last_line).enumerate() {
        let mut a = Access::load(line * LINE_BYTES).with_work(work_per_line);
        a.dep = first_dep && i == 0;
        out.push_back(a);
    }
}

/// Whether the neighbor at `pos` within an adjacency scan starts a new
/// cache line (its state access should be marked dependent).
#[inline]
pub fn starts_line(pos: u64) -> bool {
    pos.is_multiple_of(IDS_PER_LINE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_emits_one_load_per_line() {
        let mut out = VecDeque::new();
        // 40 elements of 4 bytes from index 0: 160 bytes = 3 lines.
        scan_lines4(&mut out, 0, 0, 40, true, 5);
        assert_eq!(out.len(), 3);
        assert!(out[0].dep);
        assert!(!out[1].dep);
        assert_eq!(out[1].vaddr, LINE_BYTES);
        assert_eq!(out[0].work, 5);
    }

    #[test]
    fn scan_handles_unaligned_start() {
        let mut out = VecDeque::new();
        // Elements 15..17 of a 4B array: bytes 60..68 crosses a line edge.
        scan_lines4(&mut out, 0, 15, 2, false, 0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_scan_emits_nothing() {
        let mut out = VecDeque::new();
        scan_lines4(&mut out, 0, 5, 0, true, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn elem_addresses() {
        let mut out = VecDeque::new();
        load_elem8(&mut out, 4096, 3, true, 2);
        load_elem4(&mut out, 4096, 3, false, 2);
        store_elem8(&mut out, 0, 1);
        store_elem4(&mut out, 0, 1);
        assert_eq!(out[0].vaddr, 4096 + 24);
        assert!(out[0].dep);
        assert_eq!(out[1].vaddr, 4096 + 12);
        assert_eq!(out[2].vaddr, 8);
        assert_eq!(out[3].vaddr, 4);
    }

    #[test]
    fn line_start_positions() {
        assert!(starts_line(0));
        assert!(!starts_line(1));
        assert!(starts_line(16));
    }
}
