//! Graph workloads: generators, CSR representation, and GAPBS-style
//! kernels (BFS, BC, SSSP, PageRank, triangle counting).

mod csr;
mod emit;
mod gen;
mod kernels;

pub use csr::Csr;
pub use gen::{kronecker, power_law, uniform, EdgeList};
pub use kernels::{count_triangles, GraphWorkload, Kernel};
