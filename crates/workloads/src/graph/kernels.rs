//! GAPBS-style graph kernels as simulated workloads.
//!
//! Each kernel executes the actual algorithm over the host-resident
//! graph while emitting the accesses it performs against the simulated
//! address space: offset lookups, adjacency-list line scans, and random,
//! partially dependent accesses into *shared* per-vertex state arrays.
//! As in GAPBS, the traversal kernels (BFS, BC, SSSP) process one
//! source at a time with all threads cooperating on the shared frontier
//! — sources are sequential execution phases, levels are partitioned
//! across threads. The mix of streaming (adjacency) and pointer-chasing
//! (vertex state) pages is exactly the structure the paper exploits:
//! frequency treats both alike, criticality separates them.

use std::collections::VecDeque;
use std::rc::Rc;

use pact_tiersim::{Access, AccessStream, Region, Workload};

use super::csr::Csr;
use super::emit::{
    load_elem4, load_elem8, scan_lines4, starts_line, store_elem4, store_elem8, IDS_PER_LINE,
};
use crate::common::{BufferedStream, Generator, InitPhase, LayoutBuilder};

/// Which kernel a [`GraphWorkload`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Breadth-first search: `sources` sequential roots, each traversal
    /// partitioned across `threads`.
    Bfs {
        /// Sequential BFS roots.
        sources: usize,
        /// Cooperating threads.
        threads: usize,
    },
    /// Brandes betweenness-centrality approximation (forward BFS plus
    /// reverse dependency accumulation per source).
    Bc {
        /// Sequential BC roots.
        sources: usize,
        /// Cooperating threads.
        threads: usize,
    },
    /// Bellman-Ford-style single-source shortest paths with an active
    /// frontier.
    Sssp {
        /// Sequential SSSP roots.
        sources: usize,
        /// Cooperating threads.
        threads: usize,
    },
    /// Pull-based PageRank.
    PageRank {
        /// Iterations to run.
        iterations: u32,
        /// Threads partitioning the vertex range.
        threads: usize,
    },
    /// Triangle counting over a degree-ordered graph.
    TriangleCount {
        /// Threads partitioning the vertex range.
        threads: usize,
        /// Per-thread cap on emitted accesses (hub-heavy graphs are
        /// otherwise unbounded at simulation scale).
        budget: u64,
    },
}

/// A graph kernel bound to a concrete graph and address-space layout.
#[derive(Debug, Clone)]
pub struct GraphWorkload {
    name: String,
    csr: Csr,
    kernel: Kernel,
    offsets_base: u64,
    neighbors_base: u64,
    weights_base: u64,
    depth_base: u64,
    sigma_base: u64,
    delta_base: u64,
    dist_base: u64,
    pr_score: u64,
    pr_next: u64,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

impl GraphWorkload {
    /// Lays out `csr` and the kernel's shared state arrays in a fresh
    /// address space. TriangleCount inputs are relabelled by decreasing
    /// degree (the GAPBS preprocessing step).
    pub fn new(name: impl Into<String>, csr: Csr, kernel: Kernel, seed: u64) -> Self {
        let csr = match kernel {
            Kernel::TriangleCount { .. } => relabel_by_degree(&csr),
            _ => csr,
        };
        let n = csr.num_vertices() as u64;
        let m = csr.num_edges();
        let mut lb = LayoutBuilder::new();
        let offsets_base = lb.region("offsets", (n + 1) * 8);
        let neighbors_base = lb.region("neighbors", m.max(1) * 4);
        let mut weights_base = 0;
        let mut depth_base = 0;
        let mut sigma_base = 0;
        let mut delta_base = 0;
        let mut dist_base = 0;
        let mut pr_score = 0;
        let mut pr_next = 0;
        match kernel {
            Kernel::Bfs { .. } => {
                depth_base = lb.region("depth", n * 4);
            }
            Kernel::Bc { .. } => {
                depth_base = lb.region("depth", n * 4);
                sigma_base = lb.region("sigma", n * 8);
                delta_base = lb.region("delta", n * 8);
            }
            Kernel::Sssp { .. } => {
                weights_base = lb.region("weights", m.max(1) * 4);
                dist_base = lb.region("dist", n * 4);
            }
            Kernel::PageRank { .. } => {
                pr_score = lb.region("pr_score", n * 8);
                pr_next = lb.region("pr_next", n * 8);
            }
            Kernel::TriangleCount { .. } => {}
        }
        let (footprint, regions) = lb.finish();
        Self {
            name: name.into(),
            csr,
            kernel,
            offsets_base,
            neighbors_base,
            weights_base,
            depth_base,
            sigma_base,
            delta_base,
            dist_base,
            pr_score,
            pr_next,
            footprint,
            regions,
            seed,
        }
    }

    /// The underlying graph.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }
}

impl Workload for GraphWorkload {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    /// Graph construction then state-array allocation, as in GAPBS: the
    /// CSR is read in, then per-trial arrays are zeroed. Under
    /// first-touch placement the adjacency data claims the fast tier
    /// and the (criticality-heavy) state arrays land in the slow tier.
    fn prologue(&self) -> Option<Box<dyn AccessStream + '_>> {
        let mut init = InitPhase::new();
        for r in &self.regions {
            init = match r.name.as_str() {
                "offsets" | "neighbors" | "weights" => init.read(r.start, r.bytes),
                _ => init.zero(r.start, r.bytes),
            };
        }
        Some(init.into_stream())
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        match self.kernel {
            Kernel::Bfs { sources, threads } | Kernel::Bc { sources, threads } => {
                let is_bc = matches!(self.kernel, Kernel::Bc { .. });
                let roots = self.csr.pick_sources(sources);
                let plan = Rc::new(
                    roots
                        .into_iter()
                        .map(|root| HostBfs::run(&self.csr, root))
                        .collect::<Vec<_>>(),
                );
                (0..threads)
                    .map(|t| {
                        Box::new(BufferedStream::new(TraversalGen {
                            wl: self,
                            plan: Rc::clone(&plan),
                            is_bc,
                            thread: t,
                            threads,
                            cursor: TraversalCursor::default(),
                        })) as Box<dyn AccessStream + '_>
                    })
                    .collect()
            }
            Kernel::Sssp { sources, threads } => {
                let roots = self.csr.pick_sources(sources);
                let plan = Rc::new(
                    roots
                        .into_iter()
                        .map(|root| HostSssp::run(&self.csr, root))
                        .collect::<Vec<_>>(),
                );
                (0..threads)
                    .map(|t| {
                        Box::new(BufferedStream::new(SsspGen {
                            wl: self,
                            plan: Rc::clone(&plan),
                            thread: t,
                            threads,
                            source: 0,
                            round: 0,
                            pos: t,
                        })) as Box<dyn AccessStream + '_>
                    })
                    .collect()
            }
            Kernel::PageRank {
                iterations,
                threads,
            } => (0..threads)
                .map(|t| {
                    Box::new(BufferedStream::new(PrGen::new(
                        self, t, threads, iterations,
                    ))) as Box<dyn AccessStream + '_>
                })
                .collect(),
            Kernel::TriangleCount { threads, budget } => (0..threads)
                .map(|t| {
                    Box::new(BufferedStream::new(TcGen::new(self, t, threads, budget)))
                        as Box<dyn AccessStream + '_>
                })
                .collect(),
        }
    }
}

/// Emits one vertex's adjacency walk: the offset lookup, interleaved
/// neighbor-line loads, and a per-neighbor state visit driven by
/// `visit(out, neighbor, position, dep)`, where `dep` marks the first
/// neighbor of each adjacency line (its ID arrives with that line).
fn walk_vertex<F: FnMut(&mut VecDeque<Access>, u64, u64, bool)>(
    out: &mut VecDeque<Access>,
    wl: &GraphWorkload,
    v: u32,
    mut visit: F,
) {
    load_elem8(out, wl.offsets_base, v as u64, false, 2);
    let off = wl.csr.offset(v);
    for (pos, &u) in wl.csr.neighbors(v).iter().enumerate() {
        let pos = pos as u64;
        if starts_line(pos) {
            // New adjacency line: its address is known once the offset
            // (first line) or the running pointer (later lines) is ready.
            let mut a = Access::load(wl.neighbors_base + (off + pos) * 4).with_work(2);
            a.dep = pos == 0;
            out.push_back(a);
        }
        visit(out, u as u64, pos, starts_line(pos));
    }
}

// --- Host-side BFS (shared by BFS and BC) -----------------------------

/// The result of one source's BFS, computed on the host: per-level
/// vertex lists, depths, the designated discoverer of each vertex, and
/// shortest-path counts for BC.
#[derive(Debug)]
struct HostBfs {
    levels: Vec<Vec<u32>>,
    depth: Vec<i32>,
    /// `discoverer[u] == v` iff `v`'s visit first reached `u`.
    discoverer: Vec<u32>,
}

impl HostBfs {
    fn run(csr: &Csr, root: u32) -> Self {
        let n = csr.num_vertices() as usize;
        let mut depth = vec![-1i32; n];
        let mut discoverer = vec![u32::MAX; n];
        depth[root as usize] = 0;
        let mut levels = vec![vec![root]];
        loop {
            let mut next = Vec::new();
            // Invariant: levels starts with the root level and only
            // grows, so last() always exists.
            let cur = levels.last().expect("at least the root level");
            let d = levels.len() as i32 - 1;
            for &v in cur {
                for &u in csr.neighbors(v) {
                    if depth[u as usize] < 0 {
                        depth[u as usize] = d + 1;
                        discoverer[u as usize] = v;
                        next.push(u);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }
        Self {
            levels,
            depth,
            discoverer,
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct TraversalCursor {
    source: usize,
    /// Phase within a source: forward levels, then (BC only) backward.
    backward: bool,
    level: usize,
    pos: usize,
}

/// Emits the parallel traversal (BFS or BC) for one thread: the
/// thread's slice of every level, forward and — for BC — backward.
struct TraversalGen<'w> {
    wl: &'w GraphWorkload,
    plan: Rc<Vec<HostBfs>>,
    is_bc: bool,
    thread: usize,
    threads: usize,
    cursor: TraversalCursor,
}

impl TraversalGen<'_> {
    fn emit_forward(&self, bfs: &HostBfs, v: u32, out: &mut VecDeque<Access>) {
        let d = bfs.depth[v as usize];
        let wl = self.wl;
        let is_bc = self.is_bc;
        walk_vertex(out, wl, v, |out, u, _pos, dep| {
            load_elem4(out, wl.depth_base, u, dep, 2);
            let ui = u as usize;
            if bfs.depth[ui] == d + 1 {
                if bfs.discoverer[ui] == v {
                    store_elem4(out, wl.depth_base, u);
                }
                if is_bc {
                    // sigma[u] += sigma[v] on every tree/cross edge.
                    load_elem8(out, wl.sigma_base, u, false, 2);
                    store_elem8(out, wl.sigma_base, u);
                }
            }
        });
    }

    fn emit_backward(&self, bfs: &HostBfs, w: u32, out: &mut VecDeque<Access>) {
        let dw = bfs.depth[w as usize];
        let wl = self.wl;
        walk_vertex(out, wl, w, |out, u, _pos, dep| {
            load_elem4(out, wl.depth_base, u, dep, 2);
            if bfs.depth[u as usize] == dw - 1 {
                // Predecessor: delta[u] += sigma[u]/sigma[w] (1+delta[w]).
                load_elem8(out, wl.sigma_base, u, false, 3);
                load_elem8(out, wl.delta_base, u, false, 3);
                store_elem8(out, wl.delta_base, u);
            }
        });
    }
}

impl Generator for TraversalGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        loop {
            let c = self.cursor;
            let Some(bfs) = self.plan.get(c.source) else {
                return false;
            };
            // Backward pass walks levels deepest-first. The cursor's
            // level index is always in bounds: it resets on advance.
            let level_idx = if c.backward {
                bfs.levels.len() - 1 - c.level
            } else {
                c.level
            };
            let level = &bfs.levels[level_idx];
            // This thread's slice of the level.
            let idx = c.pos * self.threads + self.thread;
            if idx < level.len() {
                let v = level[idx];
                if c.backward {
                    self.emit_backward(bfs, v, out);
                } else {
                    self.emit_forward(bfs, v, out);
                }
                self.cursor.pos += 1;
                if !out.is_empty() {
                    return true;
                }
                continue; // zero-degree vertex: keep going
            }
            // Advance level / phase / source.
            self.cursor.pos = 0;
            self.cursor.level += 1;
            if self.cursor.level >= bfs.levels.len() {
                self.cursor.level = 0;
                if self.is_bc && !c.backward {
                    self.cursor.backward = true;
                } else {
                    self.cursor.backward = false;
                    self.cursor.source += 1;
                }
            }
        }
    }
}

// --- Host-side SSSP -----------------------------------------------------

/// Deterministic edge weight in `1..=15` derived from the edge index.
fn edge_weight(idx: u64) -> u64 {
    (idx.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) + 1
}

/// Counts triangles of an (assumed symmetric) graph by degree-ordered
/// merge intersection — the reference the TC workload's emission
/// follows. Exposed for validation and for callers who want the count
/// without simulating.
pub fn count_triangles(csr: &Csr) -> u64 {
    let g = relabel_by_degree(csr);
    let mut triangles = 0u64;
    for u in 0..g.num_vertices() {
        let adj_u = g.neighbors(u);
        for (pos, &v) in adj_u.iter().enumerate() {
            if v >= u {
                break;
            }
            let adj_v = g.neighbors(v);
            let vlen = adj_v.iter().take_while(|&&w| w < v).count();
            let (mut i, mut j) = (0usize, 0usize);
            while i < pos && j < vlen {
                match adj_u[i].cmp(&adj_v[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    triangles
}

/// One source's Bellman-Ford schedule: per round, the active vertices
/// and, per active vertex, which neighbors it successfully relaxed.
#[derive(Debug)]
struct HostSssp {
    rounds: Vec<Vec<(u32, Vec<u32>)>>,
    /// Final distances (kept for validation tests).
    #[allow(dead_code)]
    dist: Vec<u64>,
}

impl HostSssp {
    fn run(csr: &Csr, root: u32) -> Self {
        let n = csr.num_vertices() as usize;
        let mut dist = vec![u64::MAX; n];
        dist[root as usize] = 0;
        let mut active = vec![root];
        let mut rounds = Vec::new();
        for _ in 0..64 {
            if active.is_empty() {
                break;
            }
            let mut round = Vec::with_capacity(active.len());
            let mut next = Vec::new();
            for &v in &active {
                let dv = dist[v as usize];
                let off = csr.offset(v);
                let mut relaxed = Vec::new();
                for (pos, &u) in csr.neighbors(v).iter().enumerate() {
                    let w = edge_weight(off + pos as u64);
                    if dv.saturating_add(w) < dist[u as usize] {
                        dist[u as usize] = dv + w;
                        relaxed.push(u);
                        next.push(u);
                    }
                }
                round.push((v, relaxed));
            }
            rounds.push(round);
            next.sort_unstable();
            next.dedup();
            active = next;
        }
        Self { rounds, dist }
    }
}

struct SsspGen<'w> {
    wl: &'w GraphWorkload,
    plan: Rc<Vec<HostSssp>>,
    thread: usize,
    threads: usize,
    source: usize,
    round: usize,
    pos: usize,
}

impl Generator for SsspGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        loop {
            let Some(sssp) = self.plan.get(self.source) else {
                return false;
            };
            let Some(round) = sssp.rounds.get(self.round) else {
                self.source += 1;
                self.round = 0;
                self.pos = self.thread;
                continue;
            };
            if self.pos >= round.len() {
                self.round += 1;
                self.pos = self.thread;
                continue;
            }
            let (v, relaxed) = &round[self.pos];
            self.pos += self.threads;
            let wl = self.wl;
            let mut r = 0usize;
            walk_vertex(out, wl, *v, |out, u, pos, dep| {
                // Weight array scanned in lockstep with the adjacency
                // list: one line load per IDS_PER_LINE neighbors.
                if pos % IDS_PER_LINE == 0 {
                    let off = wl.csr.offset(*v);
                    out.push_back(Access::load(wl.weights_base + (off + pos) * 4).with_work(1));
                }
                load_elem4(out, wl.dist_base, u, dep, 3);
                if r < relaxed.len() && relaxed[r] as u64 == u {
                    store_elem4(out, wl.dist_base, u);
                    r += 1;
                }
            });
            if !out.is_empty() {
                return true;
            }
        }
    }
}

// --- PageRank ----------------------------------------------------------

struct PrGen<'w> {
    wl: &'w GraphWorkload,
    lo: u32,
    hi: u32,
    v: u32,
    iters_left: u32,
}

impl<'w> PrGen<'w> {
    fn new(wl: &'w GraphWorkload, thread: usize, threads: usize, iterations: u32) -> Self {
        let n = wl.csr.num_vertices();
        let lo = (n as u64 * thread as u64 / threads as u64) as u32;
        let hi = (n as u64 * (thread as u64 + 1) / threads as u64) as u32;
        Self {
            wl,
            lo,
            hi,
            v: lo,
            iters_left: iterations,
        }
    }
}

impl Generator for PrGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.iters_left == 0 {
            return false;
        }
        if self.v >= self.hi {
            self.v = self.lo;
            self.iters_left -= 1;
            if self.iters_left == 0 {
                return false;
            }
        }
        let v = self.v;
        self.v += 1;
        let score_base = self.wl.pr_score;
        walk_vertex(out, self.wl, v, |out, u, _pos, dep| {
            load_elem8(out, score_base, u, dep, 3);
        });
        store_elem8(out, self.wl.pr_next, v as u64);
        true
    }
}

// --- Triangle counting ---------------------------------------------------

/// Relabels a graph so vertex IDs decrease with degree; the GAPBS TC
/// preprocessing that bounds intersection work.
fn relabel_by_degree(csr: &Csr) -> Csr {
    let n = csr.num_vertices();
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(csr.degree(v)));
    let mut rank = vec![0u32; n as usize];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    let mut edges = Vec::with_capacity(csr.num_edges() as usize);
    for v in 0..n {
        for &u in csr.neighbors(v) {
            edges.push((rank[v as usize], rank[u as usize]));
        }
    }
    Csr::from_edges(
        &super::gen::EdgeList { n, edges },
        false, // already has both directions if the input did
    )
}

struct TcGen<'w> {
    wl: &'w GraphWorkload,
    u: u32,
    stride: u32,
    budget: u64,
    emitted: u64,
    triangles: u64,
}

impl<'w> TcGen<'w> {
    fn new(wl: &'w GraphWorkload, thread: usize, threads: usize, budget: u64) -> Self {
        let _ = wl.seed;
        Self {
            wl,
            u: thread as u32,
            stride: threads as u32,
            budget,
            emitted: 0,
            triangles: 0,
        }
    }
}

impl Generator for TcGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        let n = self.wl.csr.num_vertices();
        if self.u >= n || self.emitted >= self.budget {
            return false;
        }
        let u = self.u;
        self.u += self.stride;
        let adj_u = self.wl.csr.neighbors(u);
        let off_u = self.wl.csr.offset(u);
        load_elem8(out, self.wl.offsets_base, u as u64, false, 2);
        for (pos, &v) in adj_u.iter().enumerate() {
            if v >= u {
                break; // count each triangle once (v < u < w ordering)
            }
            if starts_line(pos as u64) {
                let mut a =
                    Access::load(self.wl.neighbors_base + (off_u + pos as u64) * 4).with_work(2);
                a.dep = pos == 0;
                out.push_back(a);
            }
            // Look up v's adjacency and merge-intersect with u's.
            load_elem8(out, self.wl.offsets_base, v as u64, true, 2);
            let off_v = self.wl.csr.offset(v);
            let adj_v = self.wl.csr.neighbors(v);
            let vlen = adj_v.iter().take_while(|&&w| w < v).count() as u64;
            let ulen = pos as u64;
            scan_lines4(out, self.wl.neighbors_base, off_v, vlen.max(1), true, 4);
            scan_lines4(out, self.wl.neighbors_base, off_u, ulen.max(1), false, 4);
            // Host-side intersection for the actual triangle count.
            let (mut i, mut j) = (0usize, 0usize);
            while i < ulen as usize && j < vlen as usize {
                match adj_u[i].cmp(&adj_v[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        self.triangles += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        self.emitted += out.len() as u64;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::gen::{kronecker, power_law, uniform};
    use super::*;

    fn small_graph() -> Csr {
        Csr::from_edges(&kronecker(10, 8, 1), true)
    }

    fn drain_all(wl: &GraphWorkload) -> Vec<Vec<Access>> {
        wl.streams()
            .into_iter()
            .map(|mut s| {
                let mut v = Vec::new();
                while let Some(a) = s.next_access() {
                    assert!(a.vaddr < wl.footprint_bytes(), "access out of range");
                    v.push(a);
                }
                v
            })
            .collect()
    }

    #[test]
    fn bfs_threads_cover_every_edge_of_each_source() {
        let g = small_graph();
        let edges = g.num_edges();
        let wl = GraphWorkload::new(
            "bfs",
            g,
            Kernel::Bfs {
                sources: 2,
                threads: 4,
            },
            1,
        );
        let traces = drain_all(&wl);
        assert_eq!(traces.len(), 4);
        let total: usize = traces.iter().map(|t| t.len()).sum();
        // Two traversals over ~all edges, state loads included.
        assert!(
            total as u64 > edges,
            "total accesses {total} vs edges {edges}"
        );
        // Work is roughly balanced across threads.
        let max = traces.iter().map(|t| t.len()).max().unwrap();
        let min = traces.iter().map(|t| t.len()).min().unwrap();
        assert!(max < 3 * min + 100, "imbalance: {min}..{max}");
    }

    #[test]
    fn bfs_state_is_shared_across_threads() {
        let wl = GraphWorkload::new(
            "bfs",
            small_graph(),
            Kernel::Bfs {
                sources: 1,
                threads: 2,
            },
            1,
        );
        let depth = wl
            .regions()
            .iter()
            .find(|r| r.name == "depth")
            .unwrap()
            .clone();
        let traces = drain_all(&wl);
        for t in &traces {
            assert!(
                t.iter().any(|a| depth.contains(a.vaddr)),
                "every thread touches the shared depth array"
            );
        }
    }

    #[test]
    fn bfs_has_dependent_state_accesses() {
        let wl = GraphWorkload::new(
            "bfs",
            small_graph(),
            Kernel::Bfs {
                sources: 1,
                threads: 1,
            },
            1,
        );
        let t = &drain_all(&wl)[0];
        let deps = t.iter().filter(|a| a.dep).count();
        assert!(deps * 20 > t.len(), "expected >5% dependent accesses");
    }

    #[test]
    fn bc_runs_forward_and_backward() {
        let g = small_graph();
        let bc = GraphWorkload::new(
            "bc",
            g.clone(),
            Kernel::Bc {
                sources: 1,
                threads: 1,
            },
            1,
        );
        let bfs = GraphWorkload::new(
            "bfs",
            g,
            Kernel::Bfs {
                sources: 1,
                threads: 1,
            },
            1,
        );
        let t_bc: usize = drain_all(&bc).iter().map(|t| t.len()).sum();
        let t_bfs: usize = drain_all(&bfs).iter().map(|t| t.len()).sum();
        assert!(
            t_bc as f64 > 1.6 * t_bfs as f64,
            "BC ({t_bc}) should be ~2x BFS ({t_bfs})"
        );
    }

    #[test]
    fn bc_touches_sigma_and_delta_regions() {
        let wl = GraphWorkload::new(
            "bc",
            small_graph(),
            Kernel::Bc {
                sources: 1,
                threads: 2,
            },
            1,
        );
        let regions = wl.regions();
        let sigma = regions.iter().find(|r| r.name == "sigma").unwrap().clone();
        let delta = regions.iter().find(|r| r.name == "delta").unwrap().clone();
        let all: Vec<Access> = drain_all(&wl).into_iter().flatten().collect();
        assert!(all.iter().any(|a| sigma.contains(a.vaddr)));
        assert!(all.iter().any(|a| delta.contains(a.vaddr)));
    }

    #[test]
    fn sssp_relaxes_and_terminates() {
        let wl = GraphWorkload::new(
            "sssp",
            Csr::from_edges(&uniform(2048, 16_384, 3), true),
            Kernel::Sssp {
                sources: 2,
                threads: 2,
            },
            1,
        );
        let traces = drain_all(&wl);
        assert_eq!(traces.len(), 2);
        let total: usize = traces.iter().map(|t| t.len()).sum();
        assert!(total > 10_000);
        let stores: usize = traces
            .iter()
            .flatten()
            .filter(|a| a.kind == pact_tiersim::AccessKind::Store)
            .count();
        assert!(stores > 1_000, "relaxations recorded: {stores}");
    }

    #[test]
    fn pagerank_iterations_scale_trace_length() {
        let g = small_graph();
        let wl1 = GraphWorkload::new(
            "pr",
            g.clone(),
            Kernel::PageRank {
                iterations: 1,
                threads: 2,
            },
            1,
        );
        let wl3 = GraphWorkload::new(
            "pr",
            g,
            Kernel::PageRank {
                iterations: 3,
                threads: 2,
            },
            1,
        );
        let t1: usize = drain_all(&wl1).iter().map(|t| t.len()).sum();
        let t3: usize = drain_all(&wl3).iter().map(|t| t.len()).sum();
        assert!((t3 as f64 / t1 as f64 - 3.0).abs() < 0.2);
    }

    #[test]
    fn tc_respects_budget_and_counts_triangles() {
        let g = Csr::from_edges(&power_law(2048, 32_768, 0.8, 2), true);
        let wl = GraphWorkload::new(
            "tc",
            g,
            Kernel::TriangleCount {
                threads: 2,
                budget: 50_000,
            },
            1,
        );
        let traces = drain_all(&wl);
        for t in &traces {
            // Budget is approximate (checked per work unit) but bounding.
            assert!(t.len() < 80_000, "budget overrun: {}", t.len());
            assert!(t.len() > 1_000);
        }
    }

    #[test]
    fn deterministic_replay() {
        let wl = GraphWorkload::new(
            "bc",
            small_graph(),
            Kernel::Bc {
                sources: 2,
                threads: 2,
            },
            9,
        );
        assert_eq!(
            drain_all(&wl).iter().map(|t| t.len()).collect::<Vec<_>>(),
            drain_all(&wl).iter().map(|t| t.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn relabel_preserves_edge_count_and_orders_by_degree() {
        let g = Csr::from_edges(&power_law(512, 8_192, 0.9, 5), true);
        let r = relabel_by_degree(&g);
        assert_eq!(r.num_edges(), g.num_edges());
        // Vertex 0 in the relabelled graph has the max degree.
        let max_deg = (0..r.num_vertices()).map(|v| r.degree(v)).max().unwrap();
        assert_eq!(r.degree(0), max_deg);
    }

    #[test]
    fn host_bfs_depths_are_consistent() {
        let g = small_graph();
        let root = g.max_degree_vertex();
        let b = HostBfs::run(&g, root);
        assert_eq!(b.depth[root as usize], 0);
        for (d, level) in b.levels.iter().enumerate() {
            for &v in level {
                assert_eq!(b.depth[v as usize], d as i32);
                if d > 0 {
                    let disc = b.discoverer[v as usize];
                    assert_eq!(b.depth[disc as usize], d as i32 - 1);
                }
            }
        }
    }

    #[test]
    fn triangle_count_matches_brute_force() {
        let g = Csr::from_edges(&power_law(128, 1_500, 0.8, 3), true);
        // Brute force: ordered vertex triples with all three edges.
        let mut brute = 0u64;
        let n = g.num_vertices();
        let has_edge = |a: u32, b: u32| g.neighbors(a).binary_search(&b).is_ok();
        for a in 0..n {
            for &b in g.neighbors(a) {
                if b <= a {
                    continue;
                }
                for &c in g.neighbors(b) {
                    if c > b && has_edge(a, c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(count_triangles(&g), brute);
    }

    #[test]
    fn host_sssp_distances_match_dijkstra() {
        let g = Csr::from_edges(&uniform(256, 2_000, 9), true);
        let root = g.max_degree_vertex();
        let host = HostSssp::run(&g, root);
        // Reference Dijkstra with the same deterministic edge weights.
        let n = g.num_vertices() as usize;
        let mut dist = vec![u64::MAX; n];
        dist[root as usize] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, root)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            let off = g.offset(v);
            for (pos, &u) in g.neighbors(v).iter().enumerate() {
                let w = edge_weight(off + pos as u64);
                if d + w < dist[u as usize] {
                    dist[u as usize] = d + w;
                    heap.push(std::cmp::Reverse((d + w, u)));
                }
            }
        }
        assert_eq!(host.dist, dist);
    }

    #[test]
    fn host_sssp_rounds_shrink_distances() {
        let g = Csr::from_edges(&uniform(512, 4_096, 1), true);
        let root = g.max_degree_vertex();
        let s = HostSssp::run(&g, root);
        assert!(!s.rounds.is_empty());
        // Every relaxed target appears among some later round's actives
        // or is terminal; at minimum the schedule is non-trivial.
        let relaxations: usize = s
            .rounds
            .iter()
            .flat_map(|r| r.iter().map(|(_, rel)| rel.len()))
            .sum();
        assert!(relaxations >= 511, "graph should be mostly reachable");
    }
}
