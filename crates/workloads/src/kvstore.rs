//! Redis-style in-memory key-value store driven by YCSB workloads.
//!
//! The store is an open-chaining hash table: a GET hashes the key
//! (compute), loads the bucket head (random, independent), walks the
//! chain (dependent loads), then reads the value (short sequential
//! burst). YCSB-C is 100% reads with Zipf(0.99) keys — the paper's
//! Redis breakdown study (Figure 13) and part of the 12-workload suite.

use std::collections::VecDeque;

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{
    scramble, stream_rng, BufferedStream, Generator, InitPhase, LayoutBuilder, Zipf,
};

/// YCSB operation mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum YcsbMix {
    /// Workload A: 50% reads, 50% updates.
    A,
    /// Workload B: 95% reads, 5% updates.
    B,
    /// Workload C: 100% reads.
    C,
}

impl YcsbMix {
    fn read_fraction(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::B => 0.95,
            YcsbMix::C => 1.0,
        }
    }
}

/// A Redis-like hash-table store under a YCSB driver.
#[derive(Debug, Clone)]
pub struct KvStore {
    keys: u64,
    value_bytes: u64,
    ops: u64,
    threads: usize,
    mix: YcsbMix,
    zipf_theta: f64,
    buckets: u64,
    bucket_base: u64,
    entry_base: u64,
    value_base: u64,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

/// Bytes per chain entry (key, hash, pointers — one line).
const ENTRY_BYTES: u64 = 64;

impl KvStore {
    /// Builds a store with `keys` records of `value_bytes` each, driven
    /// by `ops` operations split across `threads` YCSB threads.
    ///
    /// # Panics
    ///
    /// Panics on an empty keyspace or zero threads.
    pub fn new(
        keys: u64,
        value_bytes: u64,
        ops: u64,
        threads: usize,
        mix: YcsbMix,
        seed: u64,
    ) -> Self {
        assert!(keys > 1, "need a keyspace");
        assert!(threads > 0);
        let buckets = (keys / 2).next_power_of_two();
        let mut lb = LayoutBuilder::new();
        let bucket_base = lb.region("ht_buckets", buckets * 8);
        let entry_base = lb.region("ht_entries", keys * ENTRY_BYTES);
        let value_base = lb.region("values", keys * value_bytes.max(LINE_BYTES));
        let (footprint, regions) = lb.finish();
        Self {
            keys,
            value_bytes: value_bytes.max(LINE_BYTES),
            ops,
            threads,
            mix,
            zipf_theta: 0.99,
            buckets,
            bucket_base,
            entry_base,
            value_base,
            footprint,
            regions,
            seed,
        }
    }

    /// The paper's Redis/YCSB-C configuration at simulation scale.
    pub fn redis_ycsb_c(keys: u64, ops: u64, seed: u64) -> Self {
        Self::new(keys, 512, ops, 4, YcsbMix::C, seed)
    }
}

impl Workload for KvStore {
    fn name(&self) -> String {
        match self.mix {
            YcsbMix::A => "redis-ycsb-a".into(),
            YcsbMix::B => "redis-ycsb-b".into(),
            YcsbMix::C => "redis".into(),
        }
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    /// YCSB load phase: the store is populated key by key. As in a real
    /// allocator, dict entries and values are allocated *interleaved*,
    /// so under first-touch placement each tier ends up with a mix of
    /// entry and value pages rather than whole regions.
    fn prologue(&self) -> Option<Box<dyn AccessStream + '_>> {
        let mut init = InitPhase::new().zero(self.bucket_base, self.buckets * 8);
        const CHUNKS: u64 = 64;
        let entry_bytes = self.keys * ENTRY_BYTES;
        let value_bytes = self.keys * self.value_bytes;
        for i in 0..CHUNKS {
            let e0 = entry_bytes * i / CHUNKS;
            let e1 = entry_bytes * (i + 1) / CHUNKS;
            init = init.zero(self.entry_base + e0, e1 - e0);
            let v0 = value_bytes * i / CHUNKS;
            let v1 = value_bytes * (i + 1) / CHUNKS;
            init = init.zero(self.value_base + v0, v1 - v0);
        }
        Some(init.into_stream())
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        let per_thread = self.ops / self.threads as u64;
        (0..self.threads)
            .map(|i| {
                Box::new(BufferedStream::new(KvGen {
                    wl: self,
                    zipf: Zipf::new(self.keys, self.zipf_theta),
                    remaining: per_thread,
                    rng: stream_rng(self.seed, i as u64),
                })) as Box<dyn AccessStream + '_>
            })
            .collect()
    }
}

struct KvGen<'w> {
    wl: &'w KvStore,
    zipf: Zipf,
    remaining: u64,
    rng: SplitMix64,
}

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

impl Generator for KvGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let wl = self.wl;
        // Zipf rank -> hashed key slot: hot keys scatter over the heap.
        let key = scramble(self.zipf.sample(&mut self.rng), wl.keys);
        let h = mix64(key);
        // Bucket head: random but address-computable (hash).
        let bucket = h % wl.buckets;
        out.push_back(Access::load(wl.bucket_base + bucket * 8).with_work(10));
        // Chain walk: average ~2 entries (load factor 2), dependent.
        let chain_len = 1 + (h >> 48) % 3;
        for step in 0..chain_len {
            let entry = mix64(key.wrapping_add(step * 0x1234_5678)) % wl.keys;
            out.push_back(Access::dependent_load(wl.entry_base + entry * ENTRY_BYTES).with_work(4));
        }
        // Value access: sequential lines of this key's value.
        let is_read = self.rng.random::<f64>() < wl.mix.read_fraction();
        let vbase = wl.value_base + key * wl.value_bytes;
        let mut addr = vbase;
        let mut first = true;
        while addr < vbase + wl.value_bytes {
            if is_read {
                let mut a = Access::load(addr).with_work(2);
                a.dep = first; // value pointer came from the chain entry
                out.push_back(a);
            } else {
                out.push_back(Access::store(addr));
            }
            first = false;
            addr += LINE_BYTES;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_tiersim::AccessKind;

    fn drain_one(w: &KvStore) -> Vec<Access> {
        let mut s = w.streams().remove(0);
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            assert!(a.vaddr < w.footprint_bytes());
            v.push(a);
        }
        v
    }

    #[test]
    fn ycsb_c_is_read_only() {
        let w = KvStore::redis_ycsb_c(10_000, 4_000, 1);
        let t = drain_one(&w);
        assert!(t.iter().all(|a| a.kind == AccessKind::Load));
    }

    #[test]
    fn ycsb_a_mixes_writes() {
        let w = KvStore::new(10_000, 256, 8_000, 1, YcsbMix::A, 1);
        let t = drain_one(&w);
        let stores = t.iter().filter(|a| a.kind == AccessKind::Store).count();
        let frac = stores as f64 / t.len() as f64;
        assert!(frac > 0.15 && frac < 0.6, "store fraction {frac}");
    }

    #[test]
    fn hot_keys_dominate_value_traffic_but_scatter() {
        use std::collections::HashSet;
        let w = KvStore::redis_ycsb_c(100_000, 20_000, 3);
        let t = drain_one(&w);
        let values = w
            .regions()
            .iter()
            .find(|r| r.name == "values")
            .unwrap()
            .clone();
        let hot_slots: HashSet<u64> = (0..1_000)
            .map(|r| crate::common::scramble(r, 100_000))
            .collect();
        let mut hot = 0usize;
        let mut total = 0usize;
        let mut max_slot = 0u64;
        for a in t.iter().filter(|a| values.contains(a.vaddr)) {
            total += 1;
            let slot = (a.vaddr - values.start) / 512;
            max_slot = max_slot.max(slot);
            if hot_slots.contains(&slot) {
                hot += 1;
            }
        }
        assert!(
            hot as f64 / total as f64 > 0.3,
            "top 1% of ranks got {hot}/{total}"
        );
        // The hot set is scattered, not clustered at the heap start.
        assert!(max_slot > 50_000);
    }

    #[test]
    fn chain_walk_is_dependent() {
        let w = KvStore::redis_ycsb_c(1_000, 500, 2);
        let t = drain_one(&w);
        let entries = w
            .regions()
            .iter()
            .find(|r| r.name == "ht_entries")
            .unwrap()
            .clone();
        assert!(t
            .iter()
            .filter(|a| entries.contains(a.vaddr))
            .all(|a| a.dep));
    }

    #[test]
    fn threads_split_ops_evenly() {
        let w = KvStore::new(1_000, 128, 9_000, 3, YcsbMix::C, 5);
        let streams = w.streams();
        assert_eq!(streams.len(), 3);
    }

    #[test]
    fn deterministic() {
        let w = KvStore::redis_ycsb_c(5_000, 1_000, 7);
        assert_eq!(drain_one(&w), drain_one(&w));
    }
}
