//! The named workload suite used by the evaluation harness.
//!
//! Mirrors the paper's 12-workload evaluation set (§5.3): five GAPBS
//! kernels over Kronecker / uniform / power-law ("twitter") graphs,
//! GPT-2 inference, Redis under YCSB-C, Silo OLTP, and three SPEC
//! CPU 2017 kernels — plus the Masim and GUPS microbenchmarks used in
//! the motivation study (§3).

use pact_tiersim::Workload;

use crate::graph::{kronecker, power_law, uniform, Csr, GraphWorkload, Kernel};
use crate::{Bwaves, Deepsjeng, Gpt2, Gups, KvStore, Masim, Mlc, Silo, Xz, ZipfDrift};

/// Size class of a suite workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit/integration tests (sub-second full suite).
    Smoke,
    /// The benchmark scale used to reproduce the paper's figures
    /// (tens of MB footprints, tens of millions of accesses).
    Paper,
}

/// Names of the 12 evaluation workloads, in the paper's Figure 6 order.
pub const SUITE: [&str; 12] = [
    "bc-kron",
    "bc-urand",
    "bc-twitter",
    "tc-twitter",
    "sssp-kron",
    "pr-twitter",
    "gpt-2",
    "redis",
    "silo",
    "603.bwaves",
    "631.deepsjeng",
    "657.xz",
];

/// Builds a suite workload by name.
///
/// Accepts every name in [`SUITE`] plus the motivation-study workloads
/// `"masim"` and `"gups"`, and the fleet-cell tenants `"mlc-hog"`
/// (foreground bandwidth antagonist) and `"zipf-drift"` (skew-drift
/// Zipf point lookups).
///
/// # Panics
///
/// Panics on an unknown name; use [`SUITE`] to enumerate valid ones.
pub fn build(name: &str, scale: Scale, seed: u64) -> Box<dyn Workload> {
    let s = scale;
    match name {
        "bc-kron" => graph(name, kron_graph(s, seed), bc_kernel(s), seed),
        "bc-urand" => graph(name, urand_graph(s, seed), bc_kernel(s), seed),
        "bc-twitter" => graph(name, twitter_graph(s, seed), bc_kernel(s), seed),
        "tc-twitter" => graph(
            name,
            twitter_graph(s, seed),
            Kernel::TriangleCount {
                threads: 4,
                budget: pick(s, 60_000, 5_000_000),
            },
            seed,
        ),
        "sssp-kron" => graph(
            name,
            kron_graph(s, seed),
            Kernel::Sssp {
                sources: src(s),
                threads: 4,
            },
            seed,
        ),
        "pr-twitter" => graph(
            name,
            twitter_graph(s, seed),
            Kernel::PageRank {
                iterations: pick(s, 2, 3) as u32,
                threads: 4,
            },
            seed,
        ),
        "gpt-2" => match s {
            Scale::Smoke => Box::new(Gpt2::new(2, 128 * 1024, 8)),
            Scale::Paper => Box::new(Gpt2::paper_scale()),
        },
        "redis" => Box::new(KvStore::redis_ycsb_c(
            pick(s, 4_000, 60_000),
            pick(s, 8_000, 800_000),
            seed,
        )),
        "silo" => match s {
            Scale::Smoke => Box::new(Silo::new(8_000, 128, 1_000, 2, seed)),
            Scale::Paper => Box::new(Silo::paper_scale(100_000, seed)),
        },
        "603.bwaves" => match s {
            Scale::Smoke => Box::new(Bwaves::new(1 << 19, 1)),
            Scale::Paper => Box::new(Bwaves::new(8 << 20, 6)),
        },
        "631.deepsjeng" => match s {
            Scale::Smoke => Box::new(Deepsjeng::new(1 << 20, 10_000, 2, seed)),
            Scale::Paper => Box::new(Deepsjeng::paper_scale(3_000_000, seed)),
        },
        "657.xz" => match s {
            Scale::Smoke => Box::new(Xz::new(1 << 20, 1 << 18, seed)),
            Scale::Paper => Box::new(Xz::new(24 << 20, 32 << 20, seed)),
        },
        "masim" => match s {
            Scale::Smoke => Box::new(Masim::figure1(1 << 20, 50_000, seed)),
            Scale::Paper => Box::new(Masim::figure1(16 << 20, 3_000_000, seed)),
        },
        "gups" => match s {
            Scale::Smoke => Box::new(Gups::new(1 << 20, 50_000, 2, seed)),
            Scale::Paper => Box::new(Gups::new(24 << 20, 4_000_000, 2, seed)),
        },
        "mlc-hog" => match s {
            Scale::Smoke => Box::new(Mlc::hog(2, 256 * 1024, 30_000)),
            Scale::Paper => Box::new(Mlc::hog(4, 4 << 20, 2_000_000)),
        },
        "zipf-drift" => match s {
            Scale::Smoke => Box::new(ZipfDrift::new(256, 60_000, 0.99, 10_000, seed)),
            Scale::Paper => Box::new(ZipfDrift::new(6_144, 4_000_000, 0.99, 400_000, seed)),
        },
        other => panic!(
            "unknown workload '{other}'; valid names: {SUITE:?}, masim, gups, mlc-hog, zipf-drift"
        ),
    }
}

fn pick(s: Scale, smoke: u64, paper: u64) -> u64 {
    match s {
        Scale::Smoke => smoke,
        Scale::Paper => paper,
    }
}

fn src(s: Scale) -> usize {
    match s {
        Scale::Smoke => 2,
        Scale::Paper => 4,
    }
}

fn bc_kernel(s: Scale) -> Kernel {
    Kernel::Bc {
        sources: src(s),
        threads: 4,
    }
}

fn kron_graph(s: Scale, seed: u64) -> Csr {
    match s {
        Scale::Smoke => Csr::from_edges(&kronecker(11, 8, seed), true),
        Scale::Paper => Csr::from_edges(&kronecker(17, 10, seed), true),
    }
}

fn urand_graph(s: Scale, seed: u64) -> Csr {
    match s {
        Scale::Smoke => Csr::from_edges(&uniform(2_048, 16_384, seed), true),
        Scale::Paper => Csr::from_edges(&uniform(131_072, 1_300_000, seed), true),
    }
}

fn twitter_graph(s: Scale, seed: u64) -> Csr {
    match s {
        Scale::Smoke => Csr::from_edges(&power_law(2_048, 16_384, 0.9, seed), true),
        Scale::Paper => Csr::from_edges(&power_law(131_072, 1_300_000, 0.9, seed), true),
    }
}

fn graph(name: &str, csr: Csr, kernel: Kernel, seed: u64) -> Box<dyn Workload> {
    Box::new(GraphWorkload::new(name, csr, kernel, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_workload_builds_at_smoke_scale() {
        for name in SUITE {
            let wl = build(name, Scale::Smoke, 1);
            assert_eq!(wl.name(), name);
            assert!(wl.footprint_bytes() > 0);
            let mut streams = wl.streams();
            assert!(!streams.is_empty());
            let first = streams[0].next_access();
            assert!(first.is_some(), "{name} emitted nothing");
        }
    }

    #[test]
    fn motivation_workloads_build() {
        for name in ["masim", "gups"] {
            let wl = build(name, Scale::Smoke, 1);
            assert!(!wl.streams().is_empty());
        }
    }

    #[test]
    fn fleet_tenants_build_as_foreground() {
        for name in ["mlc-hog", "zipf-drift"] {
            let wl = build(name, Scale::Smoke, 1);
            assert_eq!(wl.name(), name);
            assert!(!wl.is_background(), "{name} must bound a fleet run");
            assert!(!wl.streams().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        build("nope", Scale::Smoke, 1);
    }

    #[test]
    fn paper_scale_footprints_exceed_llc() {
        // Spot-check two cheap-to-build entries.
        for name in ["gpt-2", "657.xz"] {
            let wl = build(name, Scale::Paper, 1);
            assert!(
                wl.footprint_bytes() > 8 << 20,
                "{name} footprint too small for tiering study"
            );
        }
    }
}
