//! Skew-drift Zipf tenant for multi-tenant fleet cells.
//!
//! A YCSB-style Zipf(θ) key chooser whose hot set *rotates* through the
//! footprint: every `drift_every` accesses the rank→page mapping shifts
//! by one-eighth of the footprint, so yesterday's hot pages go cold and
//! a fresh region heats up. This is the canonical hard case for
//! recency/frequency tiering under contention — the tenant keeps
//! generating promotion demand for as long as it runs, which is exactly
//! what a fleet admission controller has to budget against.

use std::collections::VecDeque;

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES, PAGE_BYTES};

use crate::common::{scramble, stream_rng, BufferedStream, Generator, LayoutBuilder, Zipf};

/// A single-threaded Zipf point-lookup tenant with a drifting hot set.
#[derive(Debug, Clone)]
pub struct ZipfDrift {
    pages: u64,
    accesses: u64,
    theta: f64,
    drift_every: u64,
    seed: u64,
    footprint: u64,
    regions: Vec<Region>,
}

impl ZipfDrift {
    /// Builds the tenant: `pages` of footprint, `accesses` dependent
    /// loads drawn Zipf(θ), hot set rotating by `pages / 8` every
    /// `drift_every` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`, `drift_every == 0`, or θ is outside
    /// `(0, 1)` (see [`Zipf::new`]).
    pub fn new(pages: u64, accesses: u64, theta: f64, drift_every: u64, seed: u64) -> Self {
        assert!(pages > 0, "need a non-empty footprint");
        assert!(drift_every > 0, "drift period must be positive");
        let mut lb = LayoutBuilder::new();
        lb.region("zipf_heap", pages * PAGE_BYTES);
        let (footprint, regions) = lb.finish();
        Self {
            pages,
            accesses,
            theta,
            drift_every,
            seed,
            footprint,
            regions,
        }
    }
}

impl Workload for ZipfDrift {
    fn name(&self) -> String {
        "zipf-drift".to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        vec![Box::new(BufferedStream::new(DriftGen {
            zipf: Zipf::new(self.pages, self.theta),
            rng: stream_rng(self.seed, 0),
            pages: self.pages,
            remaining: self.accesses,
            emitted: 0,
            drift_every: self.drift_every,
            offset: 0,
        }))]
    }
}

struct DriftGen {
    zipf: Zipf,
    rng: SplitMix64,
    pages: u64,
    remaining: u64,
    emitted: u64,
    drift_every: u64,
    offset: u64,
}

impl Generator for DriftGen {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        let batch = self.remaining.min(64);
        for _ in 0..batch {
            let rank = self.zipf.sample(&mut self.rng);
            // Hash the rank so hot keys scatter (real stores hash), then
            // rotate by the drift offset so the hot *pages* migrate.
            let page = (scramble(rank, self.pages) + self.offset) % self.pages;
            let line = self.rng.random::<u64>() % (PAGE_BYTES / LINE_BYTES);
            out.push_back(
                Access::dependent_load(page * PAGE_BYTES + line * LINE_BYTES).with_work(2),
            );
            self.emitted += 1;
            if self.emitted.is_multiple_of(self.drift_every) {
                self.offset = (self.offset + (self.pages / 8).max(1)) % self.pages;
            }
        }
        self.remaining -= batch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wl: &ZipfDrift) -> Vec<u64> {
        let mut s = wl.streams().remove(0);
        std::iter::from_fn(|| s.next_access().map(|a| a.vaddr)).collect()
    }

    #[test]
    fn emits_exactly_the_requested_accesses_in_bounds() {
        let wl = ZipfDrift::new(64, 1_000, 0.9, 100, 7);
        let addrs = drain(&wl);
        assert_eq!(addrs.len(), 1_000);
        assert!(addrs.iter().all(|&a| a < wl.footprint_bytes()));
    }

    #[test]
    fn stream_is_repeatable() {
        let wl = ZipfDrift::new(128, 500, 0.9, 64, 11);
        assert_eq!(drain(&wl), drain(&wl));
    }

    #[test]
    fn hot_set_drifts_over_time() {
        // With a short drift period, the popular pages of the first
        // chunk and the last chunk should differ.
        let wl = ZipfDrift::new(256, 4_000, 0.99, 250, 3);
        let addrs = drain(&wl);
        let page_of = |v: u64| v / PAGE_BYTES;
        let head: std::collections::BTreeSet<u64> =
            addrs[..500].iter().map(|&v| page_of(v)).collect();
        let tail: std::collections::BTreeSet<u64> =
            addrs[3_500..].iter().map(|&v| page_of(v)).collect();
        assert_ne!(head, tail, "hot set never moved");
    }

    #[test]
    fn is_a_foreground_tenant() {
        let wl = ZipfDrift::new(16, 10, 0.5, 5, 1);
        assert!(!wl.is_background());
        assert_eq!(wl.name(), "zipf-drift");
    }
}
