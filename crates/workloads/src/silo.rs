//! Silo-style in-memory OLTP: B+-tree index probes plus record access.
//!
//! Each transaction performs several index lookups — a root-to-leaf
//! pointer chase through a B+-tree (the classic low-MLP, high-criticality
//! pattern) — followed by record reads/writes. Keys are Zipf-distributed,
//! so upper tree levels stay cache-hot while leaf and record pages spread
//! across the footprint.

use std::collections::VecDeque;

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{
    scramble, stream_rng, BufferedStream, Generator, InitPhase, LayoutBuilder, Zipf,
};

/// Bytes per B+-tree node (one line-sized header plus keys; we model a
/// 256-byte node = 4 lines, of which the search touches ~2).
const NODE_BYTES: u64 = 256;

/// The Silo-like OLTP workload.
#[derive(Debug, Clone)]
pub struct Silo {
    rows: u64,
    row_bytes: u64,
    txns: u64,
    threads: usize,
    reads_per_txn: u32,
    writes_per_txn: u32,
    levels: u32,
    level_bases: Vec<u64>,
    level_nodes: Vec<u64>,
    row_base: u64,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

impl Silo {
    /// Builds a Silo-style store with `rows` records of `row_bytes`,
    /// running `txns` transactions across `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics on an empty table or zero threads.
    pub fn new(rows: u64, row_bytes: u64, txns: u64, threads: usize, seed: u64) -> Self {
        assert!(rows > 16, "need a table");
        assert!(threads > 0);
        // B+-tree fanout 16: levels sized rows/16^i from the leaves up.
        let fanout = 16u64;
        let mut level_sizes = vec![rows.div_ceil(fanout)]; // leaves
                                                           // Invariant: level_sizes is seeded with the leaf level above
                                                           // and push only ever grows it.
        while *level_sizes.last().unwrap() > 1 {
            let next = level_sizes.last().unwrap().div_ceil(fanout); // Invariant: see above
            level_sizes.push(next);
        }
        level_sizes.reverse(); // root first
        let mut lb = LayoutBuilder::new();
        let mut level_bases = Vec::new();
        for (i, &nodes) in level_sizes.iter().enumerate() {
            level_bases.push(lb.region(format!("btree_l{i}"), nodes * NODE_BYTES));
        }
        let row_base = lb.region("rows", rows * row_bytes.max(LINE_BYTES));
        let (footprint, regions) = lb.finish();
        Self {
            rows,
            row_bytes: row_bytes.max(LINE_BYTES),
            txns,
            threads,
            reads_per_txn: 8,
            writes_per_txn: 2,
            levels: level_sizes.len() as u32,
            level_bases,
            level_nodes: level_sizes,
            row_base,
            footprint,
            regions,
            seed,
        }
    }

    /// The paper-suite configuration at simulation scale.
    pub fn paper_scale(txns: u64, seed: u64) -> Self {
        Self::new(200_000, 128, txns, 4, seed)
    }
}

impl Workload for Silo {
    fn name(&self) -> String {
        "silo".into()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    /// Database load phase: inner index nodes first, then leaves and
    /// rows interleaved (rows are allocated as they are inserted, so
    /// leaf and row pages mix under first-touch placement).
    fn prologue(&self) -> Option<Box<dyn AccessStream + '_>> {
        let mut init = InitPhase::new();
        let leaves = self.levels as usize - 1;
        for (i, r) in self.regions.iter().enumerate() {
            if i < leaves {
                init = init.zero(r.start, r.bytes);
            }
        }
        let leaf = &self.regions[leaves];
        let rows = &self.regions[leaves + 1];
        const CHUNKS: u64 = 64;
        for i in 0..CHUNKS {
            let l0 = leaf.bytes * i / CHUNKS;
            let l1 = leaf.bytes * (i + 1) / CHUNKS;
            init = init.zero(leaf.start + l0, l1 - l0);
            let r0 = rows.bytes * i / CHUNKS;
            let r1 = rows.bytes * (i + 1) / CHUNKS;
            init = init.zero(rows.start + r0, r1 - r0);
        }
        Some(init.into_stream())
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        let per_thread = self.txns / self.threads as u64;
        (0..self.threads)
            .map(|i| {
                Box::new(BufferedStream::new(SiloGen {
                    wl: self,
                    zipf: Zipf::new(self.rows, 0.9),
                    remaining: per_thread,
                    rng: stream_rng(self.seed, i as u64),
                })) as Box<dyn AccessStream + '_>
            })
            .collect()
    }
}

struct SiloGen<'w> {
    wl: &'w Silo,
    zipf: Zipf,
    remaining: u64,
    rng: SplitMix64,
}

impl SiloGen<'_> {
    /// Emits a root-to-leaf index probe for `key` and returns nothing;
    /// every level below the root is a dependent load.
    fn emit_probe(&self, out: &mut VecDeque<Access>, key: u64) {
        let wl = self.wl;
        for level in 0..wl.levels {
            let nodes = wl.level_nodes[level as usize];
            // The node this key routes through at this level.
            let node = key * nodes / wl.rows;
            let addr = wl.level_bases[level as usize] + node.min(nodes - 1) * NODE_BYTES;
            let mut a = Access::load(addr).with_work(6); // key comparisons
            a.dep = level > 0; // child pointer loaded from the parent
            out.push_back(a);
            // Binary search touches a second line of the node.
            out.push_back(Access::load(addr + LINE_BYTES).with_work(4));
        }
    }

    fn emit_row(&self, out: &mut VecDeque<Access>, key: u64, write: bool) {
        let wl = self.wl;
        let base = wl.row_base + key * wl.row_bytes;
        let mut addr = base;
        let mut first = true;
        while addr < base + wl.row_bytes {
            if write {
                out.push_back(Access::store(addr));
            } else {
                let mut a = Access::load(addr).with_work(3);
                a.dep = first; // row pointer came from the leaf
                out.push_back(a);
            }
            first = false;
            addr += LINE_BYTES;
        }
    }
}

impl Generator for SiloGen<'_> {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        let reads = self.wl.reads_per_txn;
        let writes = self.wl.writes_per_txn;
        for _ in 0..reads {
            let key = scramble(self.zipf.sample(&mut self.rng), self.wl.rows);
            self.emit_probe(out, key);
            self.emit_row(out, key, false);
        }
        for _ in 0..writes {
            let key = scramble(self.zipf.sample(&mut self.rng), self.wl.rows);
            self.emit_probe(out, key);
            self.emit_row(out, key, true);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_tiersim::AccessKind;

    fn drain_one(w: &Silo) -> Vec<Access> {
        let mut s = w.streams().remove(0);
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            assert!(a.vaddr < w.footprint_bytes());
            v.push(a);
        }
        v
    }

    #[test]
    fn tree_has_multiple_levels() {
        let w = Silo::new(100_000, 128, 10, 1, 1);
        assert!(w.levels >= 4, "levels: {}", w.levels);
        assert!(w.regions().iter().any(|r| r.name == "btree_l0"));
    }

    #[test]
    fn probes_are_dependent_chains() {
        let w = Silo::new(10_000, 128, 100, 1, 1);
        let t = drain_one(&w);
        let deps = t.iter().filter(|a| a.dep).count();
        assert!(deps > 100, "dependent probe loads: {deps}");
    }

    #[test]
    fn txn_mix_includes_writes() {
        let w = Silo::new(10_000, 128, 200, 1, 2);
        let t = drain_one(&w);
        let stores = t.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert!(stores > 0);
        // 2 writes per 10 row ops; each row is 2 lines of 128B.
        let frac = stores as f64 / t.len() as f64;
        assert!(frac > 0.02 && frac < 0.2, "store fraction {frac}");
    }

    #[test]
    fn root_is_reused_across_txns() {
        let w = Silo::new(50_000, 128, 100, 1, 3);
        let t = drain_one(&w);
        let root = w
            .regions()
            .iter()
            .find(|r| r.name == "btree_l0")
            .unwrap()
            .clone();
        let hits = t.iter().filter(|a| root.contains(a.vaddr)).count();
        // Every probe touches the root twice: 100 txns x 10 ops x 2.
        assert_eq!(hits, 100 * 10 * 2);
    }

    #[test]
    fn deterministic() {
        let w = Silo::new(5_000, 128, 50, 2, 4);
        assert_eq!(drain_one(&w), drain_one(&w));
    }
}
