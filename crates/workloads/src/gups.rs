//! GUPS (giga-updates per second), modified as in the paper's §3 to
//! alternate between sequential and random phases with a 1:1
//! read/write ratio.

use std::collections::VecDeque;

use pact_stats::SplitMix64;
use pact_tiersim::{Access, AccessStream, Region, Workload, LINE_BYTES};

use crate::common::{stream_rng, BufferedStream, Generator, InitPhase, LayoutBuilder};

/// The GUPS workload: read-modify-write updates over a large table,
/// alternating between a sequential phase and a random phase (50% mix by
/// default, matching the paper's modified GUPS).
///
/// Updates in the random phase use independent addresses (the classic
/// GUPS index stream is computable ahead of the loads), so random phases
/// exhibit high MLP but no spatial locality, while sequential phases add
/// prefetch-friendliness. GUPS performs more computation per element
/// than Masim (`work` cycles), which raises per-access stall cost — the
/// paper's explanation for GUPS's higher PAC values.
#[derive(Debug, Clone)]
pub struct Gups {
    table_bytes: u64,
    updates: u64,
    phase_len: u64,
    random_fraction: f64,
    work: u16,
    threads: usize,
    footprint: u64,
    regions: Vec<Region>,
    seed: u64,
}

impl Gups {
    /// Builds GUPS over a `table_bytes` table with `updates` total
    /// updates split across `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if the table is smaller than one line or `threads == 0`.
    pub fn new(table_bytes: u64, updates: u64, threads: usize, seed: u64) -> Self {
        assert!(table_bytes >= LINE_BYTES, "table too small");
        assert!(threads > 0, "need at least one thread");
        let mut lb = LayoutBuilder::new();
        lb.region("gups_table", table_bytes);
        let (footprint, regions) = lb.finish();
        Self {
            table_bytes,
            updates,
            phase_len: 30_000,
            random_fraction: 0.5,
            work: 8,
            threads,
            footprint,
            regions,
            seed,
        }
    }

    /// Sets the sequential/random phase mix (fraction of phases that are
    /// random; the paper uses 0.5).
    pub fn with_random_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.random_fraction = f;
        self
    }

    /// Sets updates per phase.
    pub fn with_phase_len(mut self, len: u64) -> Self {
        assert!(len > 0);
        self.phase_len = len;
        self
    }
}

impl Workload for Gups {
    fn name(&self) -> String {
        "gups".into()
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn regions(&self) -> Vec<Region> {
        self.regions.clone()
    }

    /// Table allocation/zeroing before the update loop.
    fn prologue(&self) -> Option<Box<dyn AccessStream + '_>> {
        Some(InitPhase::new().zero(0, self.table_bytes).into_stream())
    }

    fn streams(&self) -> Vec<Box<dyn AccessStream + '_>> {
        let per_thread = self.updates / self.threads as u64;
        (0..self.threads)
            .map(|i| {
                let gen = GupsGen {
                    lines: self.table_bytes / LINE_BYTES,
                    remaining: per_thread,
                    phase_len: self.phase_len,
                    random_fraction: self.random_fraction,
                    work: self.work,
                    cursor: (i as u64) * (self.table_bytes / LINE_BYTES / self.threads as u64),
                    in_phase: 0,
                    random_phase: false,
                    rng: stream_rng(self.seed, i as u64),
                };
                Box::new(BufferedStream::new(gen)) as Box<dyn AccessStream + '_>
            })
            .collect()
    }
}

struct GupsGen {
    lines: u64,
    remaining: u64,
    phase_len: u64,
    random_fraction: f64,
    work: u16,
    cursor: u64,
    in_phase: u64,
    random_phase: bool,
    rng: SplitMix64,
}

impl Generator for GupsGen {
    fn refill(&mut self, out: &mut VecDeque<Access>) -> bool {
        if self.remaining == 0 {
            return false;
        }
        let batch = self.remaining.min(32);
        for _ in 0..batch {
            if self.in_phase == 0 {
                self.random_phase = self.rng.random::<f64>() < self.random_fraction;
                self.in_phase = self.phase_len;
            }
            self.in_phase -= 1;
            let line = if self.random_phase {
                self.rng.random_range(0..self.lines)
            } else {
                self.cursor = (self.cursor + 1) % self.lines;
                self.cursor
            };
            let addr = line * LINE_BYTES;
            // Read-modify-write: load then store to the same line.
            out.push_back(Access::load(addr).with_work(self.work));
            out.push_back(Access::store(addr));
        }
        self.remaining -= batch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact_tiersim::AccessKind;

    fn drain_one(w: &Gups) -> Vec<Access> {
        let mut s = w.streams().remove(0);
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            v.push(a);
        }
        v
    }

    #[test]
    fn one_to_one_read_write_ratio() {
        let w = Gups::new(1 << 20, 4_000, 1, 11);
        let t = drain_one(&w);
        let loads = t.iter().filter(|a| a.kind == AccessKind::Load).count();
        let stores = t.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert_eq!(loads, stores);
        assert_eq!(loads, 4_000);
    }

    #[test]
    fn store_follows_load_to_same_line() {
        let w = Gups::new(1 << 20, 100, 1, 11);
        let t = drain_one(&w);
        for pair in t.chunks(2) {
            assert_eq!(pair[0].kind, AccessKind::Load);
            assert_eq!(pair[1].kind, AccessKind::Store);
            assert_eq!(pair[0].vaddr, pair[1].vaddr);
        }
    }

    #[test]
    fn phases_alternate_patterns() {
        let w = Gups::new(1 << 22, 40_000, 1, 3).with_phase_len(1_000);
        let t = drain_one(&w);
        // Detect at least one sequential run and one random phase by
        // looking at address deltas between consecutive loads.
        let loads: Vec<u64> = t
            .iter()
            .filter(|a| a.kind == AccessKind::Load)
            .map(|a| a.vaddr)
            .collect();
        let mut seq_runs = 0;
        let mut jumps = 0;
        for w2 in loads.windows(2) {
            if w2[1] == w2[0] + LINE_BYTES {
                seq_runs += 1;
            } else {
                jumps += 1;
            }
        }
        assert!(seq_runs > 1_000, "sequential accesses: {seq_runs}");
        assert!(jumps > 1_000, "random accesses: {jumps}");
    }

    #[test]
    fn threads_split_updates() {
        let w = Gups::new(1 << 20, 8_000, 4, 1);
        let streams = w.streams();
        assert_eq!(streams.len(), 4);
        let mut total = 0;
        for mut s in streams {
            while s.next_access().is_some() {
                total += 1;
            }
        }
        assert_eq!(total, 2 * 8_000); // load + store per update
    }

    #[test]
    fn deterministic_replay() {
        let w = Gups::new(1 << 20, 1_000, 2, 9);
        let a: Vec<_> = drain_one(&w);
        let b: Vec<_> = drain_one(&w);
        assert_eq!(a, b);
    }
}
