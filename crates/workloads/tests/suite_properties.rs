//! Property and conformance tests over the whole workload suite.

use pact_tiersim::{AccessKind, Workload};
use pact_workloads::suite::{build, Scale, SUITE};
use proptest::prelude::*;

fn all_names() -> Vec<&'static str> {
    let mut v = SUITE.to_vec();
    v.push("masim");
    v.push("gups");
    v
}

/// Every emitted access of every stream (prologue included) stays
/// within the declared footprint.
#[test]
fn all_accesses_stay_in_bounds() {
    for name in all_names() {
        let wl = build(name, Scale::Smoke, 3);
        let fp = wl.footprint_bytes();
        let mut streams = Vec::new();
        if let Some(p) = wl.prologue() {
            streams.push(p);
        }
        streams.extend(wl.streams());
        let mut total = 0u64;
        for mut s in streams {
            while let Some(a) = s.next_access() {
                assert!(a.vaddr < fp, "{name}: {:#x} >= footprint {fp:#x}", a.vaddr);
                total += 1;
            }
        }
        assert!(total > 100, "{name}: suspiciously few accesses ({total})");
    }
}

/// `streams()` returns fresh, identical iterators on each call — the
/// property the DRAM-baseline/policy-run comparison depends on.
#[test]
fn streams_are_replayable() {
    for name in all_names() {
        let wl = build(name, Scale::Smoke, 5);
        let collect = || -> Vec<(u64, u64)> {
            // (count, xor-hash of addresses) per stream
            wl.streams()
                .into_iter()
                .map(|mut s| {
                    let mut n = 0u64;
                    let mut h = 0u64;
                    while let Some(a) = s.next_access() {
                        n += 1;
                        h ^= a.vaddr.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(7);
                    }
                    (n, h)
                })
                .collect()
        };
        assert_eq!(collect(), collect(), "{name} replays differ");
    }
}

/// Prologues only load existing data or populate regions with stores;
/// they never emit dependent loads (initialization is streaming).
#[test]
fn prologues_are_streaming() {
    for name in all_names() {
        let wl = build(name, Scale::Smoke, 7);
        let Some(mut p) = wl.prologue() else { continue };
        while let Some(a) = p.next_access() {
            assert!(!a.dep, "{name}: dependent access in prologue");
        }
    }
}

/// Different seeds produce different (but equally sized) graph inputs
/// for the randomized workloads.
#[test]
fn seeds_change_content_not_shape() {
    let a = build("bc-kron", Scale::Smoke, 1);
    let b = build("bc-kron", Scale::Smoke, 2);
    // Footprints match to within a few percent (edge dedup varies the
    // neighbor-array length slightly across seeds).
    let (fa, fb) = (a.footprint_bytes() as f64, b.footprint_bytes() as f64);
    assert!((fa / fb - 1.0).abs() < 0.05, "footprints {fa} vs {fb}");
    let first = |wl: &dyn Workload| {
        let mut s = wl.streams();
        let mut v = Vec::new();
        for _ in 0..2_000 {
            match s[0].next_access() {
                Some(x) => v.push(x.vaddr),
                None => break,
            }
        }
        v
    };
    assert_ne!(first(a.as_ref()), first(b.as_ref()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The YCSB mix parameter controls the store fraction as documented.
    #[test]
    fn kvstore_mix_controls_writes(seed in any::<u64>()) {
        use pact_workloads::{KvStore, YcsbMix};
        let frac = |mix: YcsbMix| {
            let wl = KvStore::new(2_000, 128, 3_000, 1, mix, seed);
            let mut s = wl.streams();
            let mut stores = 0usize;
            let mut total = 0usize;
            while let Some(a) = s[0].next_access() {
                total += 1;
                if a.kind == AccessKind::Store {
                    stores += 1;
                }
            }
            stores as f64 / total as f64
        };
        let a = frac(YcsbMix::A);
        let b = frac(YcsbMix::B);
        let c = frac(YcsbMix::C);
        prop_assert!(a > b && b > c, "A {a:.2} B {b:.2} C {c:.2}");
        prop_assert_eq!(c, 0.0);
    }

    /// Masim chase threads emit only dependent loads over their own
    /// buffer regardless of configuration.
    #[test]
    fn masim_chase_is_fully_dependent(loads in 100u64..5_000, seed in any::<u64>()) {
        use pact_workloads::{Masim, MasimPattern};
        let wl = Masim::single("m", MasimPattern::RandomChase, 1 << 20, loads, seed);
        let mut s = wl.streams();
        let mut n = 0;
        while let Some(a) = s[0].next_access() {
            prop_assert!(a.dep);
            prop_assert!(a.vaddr < 1 << 20);
            n += 1;
        }
        prop_assert_eq!(n, loads);
    }
}
