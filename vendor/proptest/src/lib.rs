//! A minimal, dependency-free re-implementation of the subset of the
//! `proptest` API this workspace uses, so property tests build and run
//! with no network access (the real crate cannot be resolved offline).
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` cases
//! with inputs drawn from the given strategies by a deterministic
//! per-case SplitMix64 RNG, so failures reproduce exactly across runs.
//! There is no shrinking — the failing case's inputs are reported via
//! the panic message of the failed assertion instead.

/// Deterministic RNG driving all value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Error carried out of a failing property (from `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is exercised with.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy behind `dyn Strategy` (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (from `prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty arm list.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning a wide magnitude range.
            (rng.next_f64() - 0.5) * 2e9
        }
    }

    /// Strategy produced by [`any`](super::any).
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo).wrapping_add(1);
                    if span == 0 {
                        // Full-domain inclusive range.
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.below(span)) as $t
                    }
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// An arbitrary value of `T` (see [`strategy::Arbitrary`]).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose elements come from `elem` and whose length is
    /// uniform over `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }
}

/// Namespace mirror so `prop::collection::vec` works as in the real
/// crate.
pub mod prop {
    pub use super::collection;
}

pub mod test_runner {
    //! The case loop behind `proptest!`.

    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Runs `body` for each case with a deterministic per-case RNG.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// body returns an error.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Stable per-test seed: derived from the property name so
        // adding cases to one test never perturbs another.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for case in 0..config.cases.max(1) {
            let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Err(e) = body(&mut rng) {
                panic!("property '{name}' failed at case {case}: {e}");
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::strategy::{Arbitrary, Just, Strategy};
    pub use super::{any, prop, ProptestConfig, TestCaseError, TestRng};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, recording the failing inputs
/// via early return instead of unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares property tests; each `fn name(pat in strategy, ...)` item
/// becomes a `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $config;
                $crate::test_runner::run(stringify!($name), &__pt_config, |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
