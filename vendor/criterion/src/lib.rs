//! A minimal, dependency-free stand-in for the subset of the
//! `criterion` API this workspace's micro-benchmarks use, so the bench
//! targets build and run with no network access.
//!
//! Measurement model: each benchmark is warmed briefly, then timed over
//! enough iterations to fill a small measurement window; the mean
//! time/iteration is printed. There are no statistical reports — the
//! numbers are indicative, meant for spotting order-of-magnitude
//! regressions in CI logs.

use std::time::{Duration, Instant};

/// Per-measurement time budget. Deliberately small: `cargo test` also
/// executes `harness = false` bench binaries, so the whole suite must
/// stay fast.
const MEASURE_WINDOW: Duration = Duration::from_millis(20);

/// How a batched benchmark amortizes its setup (size hints are
/// accepted for API compatibility and do not change measurement here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Medium per-iteration input.
    MediumInput,
    /// Large per-iteration input.
    LargeInput,
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Self {
        Self {
            iters_done: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + rate estimate.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let batch = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let batch = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs.drain(..) {
            std::hint::black_box(routine(input));
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters_done == 0 {
        println!("{name:<44} (no measurement)");
        return;
    }
    let per = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    if per >= 1_000_000.0 {
        println!("{name:<44} {:>12.3} ms/iter", per / 1e6);
    } else if per >= 1_000.0 {
        println!("{name:<44} {:>12.3} µs/iter", per / 1e3);
    } else {
        println!("{name:<44} {:>12.1} ns/iter", per);
    }
}

/// Benchmark registry/driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group; settings are accepted for API compatibility.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling here is time-boxed instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
