//! Colocation: two processes with opposite memory behaviour sharing one
//! fast tier (the paper's §5.9 study).
//!
//! ```text
//! cargo run --release --example colocation
//! ```
//!
//! A streaming Masim process and a pointer-chasing Masim process
//! compete for a fast tier that holds only half their combined
//! footprint. The criticality-first policy should give the fast tier to
//! the chaser — its accesses are the ones that stall a core — while the
//! streamer's high-MLP accesses tolerate the slow tier.

use pact_baselines::{Colloid, NoTier};
use pact_core::{PactConfig, PactPolicy};
use pact_tiersim::{Machine, MachineConfig, RunReport, TieringPolicy, Workload, PAGE_BYTES};
use pact_workloads::{Masim, MasimPattern};

fn cycles_of(report: &RunReport, name: &str) -> u64 {
    report
        .per_process
        .iter()
        .find(|p| p.name == name)
        .expect("process ran")
        .cycles
}

fn main() {
    let buf = 4 << 20; // 4 MiB per process
    let seq = Masim::single("streamer", MasimPattern::Sequential, buf, 6_000_000, 1);
    let rnd = Masim::single("chaser", MasimPattern::RandomChase, buf, 250_000, 2);
    let total_pages = (seq.footprint_bytes() + rnd.footprint_bytes()).div_ceil(PAGE_BYTES);

    let dram = Machine::new(MachineConfig::dram_only()).unwrap();
    let base = dram.run_colocated(&[&seq, &rnd], &mut NoTier::new());

    let machine = Machine::new(MachineConfig::skylake_cxl(total_pages / 2)).unwrap();
    let mut policies: Vec<Box<dyn TieringPolicy>> = vec![
        Box::new(PactPolicy::new(PactConfig::default()).unwrap()),
        Box::new(Colloid::new()),
        Box::new(NoTier::new()),
    ];
    println!(
        "{:10} {:>14} {:>14} {:>10}",
        "policy", "streamer slow%", "chaser slow%", "promoted"
    );
    for policy in policies.iter_mut() {
        let r = machine.run_colocated(&[&seq, &rnd], policy.as_mut());
        let s = |name| (cycles_of(&r, name) as f64 / cycles_of(&base, name) as f64 - 1.0) * 100.0;
        println!(
            "{:10} {:>13.1}% {:>13.1}% {:>10}",
            r.policy,
            s("streamer"),
            s("chaser"),
            r.promotions
        );
    }
    println!(
        "\nUniform stall attribution still finds the dominant criticality\n\
         source under colocation: the chaser's pages (paper Fig. 12)."
    );
}
