//! Inspecting PAC: what does criticality-first profiling actually see?
//!
//! ```text
//! cargo run --release --example pac_inspection
//! ```
//!
//! Runs GUPS on the emulated CXL tier, then dumps the PAC store: the
//! per-page criticality PACT accumulated, against per-page sampled
//! frequency — the raw material of the paper's Figure 1 — plus the
//! adaptive bin width the promotion engine converged to.

use pact_core::{PactConfig, PactPolicy};
use pact_stats::Summary;
use pact_tiersim::{Machine, MachineConfig, Tier};
use pact_workloads::Gups;

fn main() {
    let workload = Gups::new(8 << 20, 1_000_000, 2, 11);
    // Everything on the slow tier, sampled densely: pure profiling.
    let mut cfg = MachineConfig::skylake_cxl(0);
    cfg.pebs.rate = 25;
    let machine = Machine::new(cfg).unwrap();
    let mut pact = PactPolicy::new(PactConfig::default()).unwrap();
    let report = machine.run(&workload, &mut pact);

    println!(
        "run: {} accesses, {} slow-tier misses, measured slow-tier MLP {:.1}",
        report.counters.accesses,
        report.counters.llc_misses[Tier::Slow.index()],
        report.counters.tor_mlp(Tier::Slow),
    );
    println!(
        "PEBS samples: {}  tracked pages: {}  final bin width: {:.1}",
        report.counters.pebs_samples,
        pact.store().tracked_pages(),
        pact.bin_width()
    );

    // Distribution of accumulated PAC across pages.
    let pacs: Vec<f64> = pact.store().iter().map(|(_, e)| e.pac).collect();
    println!(
        "\nPAC distribution across pages: {}",
        Summary::from_values(&pacs)
    );

    // Top pages by PAC vs top pages by frequency: how much do the
    // rankings agree?
    let mut by_pac: Vec<_> = pact.store().iter().map(|(p, e)| (*p, e.pac)).collect();
    let mut by_freq: Vec<_> = pact
        .store()
        .iter()
        .map(|(p, e)| (*p, e.total_samples))
        .collect();
    by_pac.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    by_freq.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
    let top = 100.min(by_pac.len());
    let pac_top: std::collections::HashSet<_> = by_pac[..top].iter().map(|&(p, _)| p).collect();
    let overlap = by_freq[..top]
        .iter()
        .filter(|&&(p, _)| pac_top.contains(&p))
        .count();
    println!(
        "top-{top} overlap between PAC ranking and frequency ranking: {overlap}/{top}\n\
         (the disagreement is exactly where criticality-first placement wins)"
    );
}
