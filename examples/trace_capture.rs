//! Capturing and replaying access traces.
//!
//! ```text
//! cargo run --release --example trace_capture
//! ```
//!
//! Captures a Silo run's full access stream to a trace file, replays it
//! through the simulator, and verifies the replay touches the same
//! pages — the workflow for sharing the exact stream behind a result
//! or feeding externally captured traces into the policies.

use pact_core::{PactConfig, PactPolicy};
use pact_tiersim::{read_trace, write_workload_trace, Machine, MachineConfig, Workload};
use pact_workloads::Silo;

fn main() -> std::io::Result<()> {
    let original = Silo::new(20_000, 128, 5_000, 2, 7);

    // Capture: every access (prologue + worker threads) to a file.
    let path = std::env::temp_dir().join("pact_silo.trace");
    let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    let records = write_workload_trace(file, &original)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "captured {records} accesses ({:.1} MiB) to {}",
        bytes as f64 / (1 << 20) as f64,
        path.display()
    );

    // Replay: load the trace back as a workload and run PACT on it.
    let replay = read_trace(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(replay.footprint_bytes(), original.footprint_bytes());
    let machine = Machine::new(MachineConfig::skylake_cxl(
        replay.footprint_bytes() / 4096 / 2,
    ))
    .unwrap();
    let mut pact = PactPolicy::new(PactConfig::default()).unwrap();
    let r = machine.run(&replay, &mut pact);
    println!(
        "replayed '{}': {} accesses, {} cycles, {} promotions",
        replay.name(),
        r.counters.accesses,
        r.total_cycles,
        r.promotions
    );
    assert_eq!(r.counters.accesses, records);
    println!("replayed access count matches the capture — trace is lossless.");
    std::fs::remove_file(&path)?;
    Ok(())
}
