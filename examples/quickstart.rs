//! Quickstart: run PACT on a simple two-pattern workload and inspect
//! the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a workload with a latency-tolerant streaming region and a
//! latency-critical pointer-chasing region, sizes the fast tier to hold
//! only half the footprint, and compares first-touch placement (NoTier)
//! against PACT's criticality-first migration.

use pact_core::{PactConfig, PactPolicy};
use pact_tiersim::{Access, FirstTouch, Machine, MachineConfig, TraceWorkload, PAGE_BYTES};

fn main() {
    // A workload with two equally *hot* but differently *critical*
    // halves: pages 0..512 are streamed (high MLP, prefetchable);
    // pages 512..1024 are pointer-chased (every load stalls the core).
    let pages = 1024u64;
    let mut trace = Vec::new();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for round in 0..40 {
        for line in 0..512 * (PAGE_BYTES / 64) {
            trace.push(Access::load(line * 64).with_work(1));
        }
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
            let page = 512 + x % 512;
            let line = (x >> 40) % (PAGE_BYTES / 64);
            trace.push(Access::dependent_load(page * PAGE_BYTES + line * 64).with_work(1));
        }
    }
    let workload = TraceWorkload::new("quickstart", pages * PAGE_BYTES, trace);

    // The paper's testbed: DRAM fast tier + emulated-CXL slow tier,
    // fast tier sized to half the footprint (the 1:1 ratio).
    let machine = Machine::new(MachineConfig::skylake_cxl(pages / 2)).unwrap();

    // DRAM-only reference for slowdown normalization.
    let dram = Machine::new(MachineConfig::dram_only()).unwrap();
    let base = dram.run(&workload, &mut FirstTouch::new());

    let no_tier = machine.run(&workload, &mut FirstTouch::new());
    let mut pact = PactPolicy::new(PactConfig::default()).unwrap();
    let with_pact = machine.run(&workload, &mut pact);

    let slowdown = |cycles: u64| (cycles as f64 / base.total_cycles as f64 - 1.0) * 100.0;
    println!("DRAM-only:  {:>12} cycles (baseline)", base.total_cycles);
    println!(
        "NoTier:     {:>12} cycles  ({:+.1}% slowdown)",
        no_tier.total_cycles,
        slowdown(no_tier.total_cycles)
    );
    println!(
        "PACT:       {:>12} cycles  ({:+.1}% slowdown, {} pages promoted)",
        with_pact.total_cycles,
        slowdown(with_pact.total_cycles),
        with_pact.promotions
    );
    println!(
        "\nPACT recovered {:.0}% of the tiering penalty by promoting the\n\
         pointer-chased (high-PAC) pages and leaving the streamed pages\n\
         — equally hot, but latency-tolerant — on the slow tier.",
        (1.0 - slowdown(with_pact.total_cycles) / slowdown(no_tier.total_cycles).max(1e-9)) * 100.0
    );
}
