//! CHMU sampling: running PACT from CXL 3.2 device-side hotness
//! counters instead of PEBS (the paper's §4.3.5 future-work path).
//!
//! ```text
//! cargo run --release --example chmu_sampling
//! ```
//!
//! The CXL Hotness Monitoring Unit counts slow-tier accesses on the
//! *device controller* — exact per-page counts, zero application
//! overhead — where PEBS delivers a 1-in-N sample with a per-sample
//! CPU cost. This example runs the same workload both ways.

use pact_core::{PactConfig, PactPolicy, SamplingSource};
use pact_tiersim::{FirstTouch, Machine, MachineConfig, Workload, PAGE_BYTES};
use pact_workloads::graph::{kronecker, Csr, GraphWorkload, Kernel};

fn main() {
    let workload = GraphWorkload::new(
        "bc-kron",
        Csr::from_edges(&kronecker(14, 8, 42), true),
        Kernel::Bc {
            sources: 2,
            threads: 4,
        },
        42,
    );
    let pages = workload.footprint_bytes().div_ceil(PAGE_BYTES);

    let dram = Machine::new(MachineConfig::dram_only()).unwrap();
    let base = dram.run(&workload, &mut FirstTouch::new()).total_cycles;

    println!(
        "{:12} {:>10} {:>10} {:>14} {:>12}",
        "source", "slowdown", "promoted", "observations", "pebs cost"
    );
    for (label, sampling, chmu_counters) in [
        ("pebs", SamplingSource::Pebs, 0usize),
        ("chmu", SamplingSource::Chmu, 2_048),
    ] {
        let mut cfg = MachineConfig::skylake_cxl(pages / 2);
        cfg.chmu_counters = chmu_counters;
        let machine = Machine::new(cfg).unwrap();
        let mut pact = PactPolicy::new(PactConfig {
            sampling,
            ..PactConfig::default()
        })
        .unwrap();
        let r = machine.run(&workload, &mut pact);
        println!(
            "{:12} {:>9.1}% {:>10} {:>14} {:>11}cy",
            label,
            (r.total_cycles as f64 / base as f64 - 1.0) * 100.0,
            r.promotions,
            pact.store().global_samples(),
            r.counters.pebs_samples * 30, // per-sample overhead charged
        );
    }
    println!(
        "\nThe CHMU path sees every slow-tier miss (orders of magnitude more\n\
         observations) without charging the application a cycle — the\n\
         hardware direction the paper points to for future PAC sampling."
    );
}
