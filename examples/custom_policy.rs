//! Writing your own tiering policy against the simulator's policy API.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```
//!
//! Implements a miniature "sampled-hotness" policy from scratch — a few
//! dozen lines — and benches it against PACT and first-touch on a
//! Zipf-skewed key-value workload. The same `TieringPolicy` trait is
//! what PACT and all seven paper baselines are built on.

use std::collections::HashMap;

use pact_core::{PactConfig, PactPolicy};
use pact_tiersim::{
    FirstTouch, Machine, MachineConfig, PageId, PolicyCtx, SampleEvent, Tier, TieringPolicy,
    WindowStats, Workload, PAGE_BYTES,
};
use pact_workloads::KvStore;

/// Promote any slow-tier page seen in `threshold` PEBS samples; demote
/// kernel-LRU-cold pages to make room. That's the whole policy.
struct SampledHotness {
    counts: HashMap<PageId, u32>,
    threshold: u32,
}

impl TieringPolicy for SampledHotness {
    fn name(&self) -> &str {
        "sampled-hotness"
    }

    fn on_sample(&mut self, ev: &SampleEvent, _ctx: &mut PolicyCtx) {
        if let SampleEvent::Pebs { page, .. } = *ev {
            *self.counts.entry(page).or_insert(0) += 1;
        }
    }

    fn on_window(&mut self, _win: &WindowStats, ctx: &mut PolicyCtx) {
        let hot: Vec<PageId> = self
            .counts
            .iter()
            .filter(|&(p, &c)| c >= self.threshold && ctx.tier_of(*p) == Some(Tier::Slow))
            .map(|(p, _)| *p)
            .take(64)
            .collect();
        if ctx.fast_free() < hot.len() as u64 {
            let deficit = hot.len() - ctx.fast_free() as usize;
            for cold in ctx.cold_fast_units(deficit) {
                ctx.demote(cold);
            }
        }
        for page in hot {
            ctx.promote(page);
            self.counts.remove(&page); // re-earn hotness after promotion
        }
    }
}

fn main() {
    let workload = KvStore::redis_ycsb_c(20_000, 300_000, 7);
    let pages = workload.footprint_bytes().div_ceil(PAGE_BYTES);

    let dram = Machine::new(MachineConfig::dram_only()).unwrap();
    let base = dram.run(&workload, &mut FirstTouch::new()).total_cycles;
    let machine = Machine::new(MachineConfig::skylake_cxl(pages / 2)).unwrap();

    let mut mine = SampledHotness {
        counts: HashMap::new(),
        threshold: 3,
    };
    let mut pact = PactPolicy::new(PactConfig::default()).unwrap();

    println!("{:16} {:>10} {:>10}", "policy", "slowdown", "promoted");
    for (r, name) in [
        (machine.run(&workload, &mut FirstTouch::new()), "notier"),
        (machine.run(&workload, &mut mine), "sampled-hotness"),
        (machine.run(&workload, &mut pact), "pact"),
    ] {
        println!(
            "{:16} {:>9.1}% {:>10}",
            name,
            (r.total_cycles as f64 / base as f64 - 1.0) * 100.0,
            r.promotions
        );
    }
    println!(
        "\nOn a Zipf key-value workload hotness and criticality mostly agree,\n\
         so even this 40-line policy is competitive; the gap opens on\n\
         workloads whose hot pages are latency-tolerant (see the\n\
         graph_tiering and quickstart examples)."
    );
}
