//! Graph-analytics tiering: betweenness centrality over a Kronecker
//! graph under several tiering systems.
//!
//! ```text
//! cargo run --release --example graph_tiering
//! ```
//!
//! This is the paper's motivating scenario: the CSR adjacency arrays
//! are hot *and* prefetch-friendly, while the shared vertex-state
//! arrays are hot *and* pointer-chased. Hotness-based systems cannot
//! tell them apart; criticality can.

use pact_baselines::{Colloid, Nbt, NoTier};
use pact_core::{PactConfig, PactPolicy};
use pact_tiersim::{Machine, MachineConfig, TieringPolicy, Workload, PAGE_BYTES};
use pact_workloads::graph::{kronecker, Csr, GraphWorkload, Kernel};

fn main() {
    // A scaled bc-kron: 2^14 vertices, degree ~8, two sources across
    // four cooperating threads.
    let graph = Csr::from_edges(&kronecker(14, 8, 42), true);
    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let workload = GraphWorkload::new(
        "bc-kron-example",
        graph,
        Kernel::Bc {
            sources: 2,
            threads: 4,
        },
        42,
    );
    let pages = workload.footprint_bytes().div_ceil(PAGE_BYTES);
    println!("footprint: {} MiB\n", workload.footprint_bytes() >> 20);

    let dram = Machine::new(MachineConfig::dram_only()).unwrap();
    let base = dram.run(&workload, &mut NoTier::new()).total_cycles;

    // Fast tier = half the footprint (1:1).
    let machine = Machine::new(MachineConfig::skylake_cxl(pages / 2)).unwrap();
    let mut policies: Vec<Box<dyn TieringPolicy>> = vec![
        Box::new(PactPolicy::new(PactConfig::default()).unwrap()),
        Box::new(Colloid::new()),
        Box::new(Nbt::new()),
        Box::new(NoTier::new()),
    ];
    println!(
        "{:10} {:>12} {:>10} {:>12} {:>12}",
        "policy", "slowdown", "promoted", "hint faults", "slow misses"
    );
    for policy in policies.iter_mut() {
        let r = machine.run(&workload, policy.as_mut());
        println!(
            "{:10} {:>11.1}% {:>10} {:>12} {:>12}",
            r.policy,
            (r.total_cycles as f64 / base as f64 - 1.0) * 100.0,
            r.promotions,
            r.counters.hint_faults,
            r.counters.llc_misses[1],
        );
    }
    println!(
        "\nPACT should show the lowest slowdown with an order of magnitude\n\
         fewer migrations than the fault-driven systems (paper Fig. 4)."
    );
}
