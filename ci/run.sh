#!/usr/bin/env sh
# Offline CI gate: format, lint, build, tests, perf-regression gate,
# observability / fault / invariant smoke checks.
#
# The workspace is fully hermetic — `rand`, `proptest`, and `criterion`
# are replaced by in-repo implementations (crates/stats/src/rng.rs and
# vendor/) — so this script must pass with no network access:
#
#     CARGO_NET_OFFLINE=true ci/run.sh
#
# The pipeline is split into named stages; run a subset by listing them
# in PACT_CI_STAGES (space-separated), e.g.
#
#     PACT_CI_STAGES="fmt lint" ci/run.sh
#     PACT_CI_STAGES="build check" ci/run.sh
#
# Stage names are validated against the roster below — a typo exits 2
# naming the bad stage instead of silently skipping everything.
#
# Stages: fmt lint build test workspace perf machine-perf obs obs-report fault snapshot check fleet fleet-perf
#
# PACT_JOBS is pinned so sweep-shaped tests exercise the parallel
# executor deterministically regardless of the runner's core count.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"
export PACT_JOBS="${PACT_JOBS:-4}"

ROSTER="fmt lint build test workspace perf machine-perf obs obs-report fault snapshot check fleet fleet-perf"
STAGES="${PACT_CI_STAGES:-$ROSTER}"
for s in $STAGES; do
    case " $ROSTER " in
    *" $s "*) ;;
    *)
        echo "error: unknown CI stage '$s' in PACT_CI_STAGES (valid: $ROSTER)" >&2
        exit 2
        ;;
    esac
done

TIMING_FILE="$(mktemp)"
PREV_TIMINGS="$(mktemp)"
trap 'rm -f "$TIMING_FILE" "$PREV_TIMINGS"' EXIT
# Last run's wall times (persisted below) drive a soft slowdown warning.
TIMINGS_PATH="target/ci-timings.txt"
[ -f "$TIMINGS_PATH" ] && cp "$TIMINGS_PATH" "$PREV_TIMINGS"

# --- stage bodies ----------------------------------------------------

stage_fmt() {
    cargo fmt --all --check
}

# Static analysis, two layers: pact-lint (the workspace determinism &
# hygiene linter — token rules in DESIGN.md §11, semantic X-rules in
# §16) and clippy with warnings denied. The mutation self-test proves
# the semantic analyzer still has teeth (seeded deletions of a codec
# field write, a tenant counter mirror, and an EventKind match arm must
# each be caught), then the full scan gates on zero unsuppressed
# findings and leaves the JSON report in target/ci-lint for the
# workflow's artifact upload. `tierctl lint` exits 1 on findings, 2 on
# usage/IO errors; either fails the stage.
stage_lint() {
    lint_dir="target/ci-lint"
    rm -rf "$lint_dir"
    mkdir -p "$lint_dir"
    cargo run --release -p pact-bench --bin tierctl -- lint --self-test
    rc=0
    cargo run --release -p pact-bench --bin tierctl -- lint --json \
        > "$lint_dir/lint-report.json" || rc=$?
    [ "$rc" -eq 0 ] || {
        echo "    FAIL: unsuppressed lint findings (see $lint_dir/lint-report.json)"
        cargo run --release -p pact-bench --bin tierctl -- lint || true
        exit 1
    }
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_build() {
    cargo build --release
}

stage_test() {
    cargo test -q
    # Pin the stage-roster validation above: an unknown stage name must
    # fail fast with exit 2 and name the offender — the old behaviour
    # (silently skipping every stage and printing "CI OK") let a typo'd
    # PACT_CI_STAGES pass a broken tree.
    rc=0
    roster_out=$(PACT_CI_STAGES="no-such-stage" sh ci/run.sh 2>&1) || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "    FAIL: unknown PACT_CI_STAGES stage exited $rc, want 2"
        exit 1
    }
    echo "$roster_out" | grep -q "no-such-stage" || {
        echo "    FAIL: roster error did not name the bad stage"
        exit 1
    }
    echo "    PACT_CI_STAGES roster validation rejects unknown stages with exit 2"
}

stage_workspace() {
    cargo test --workspace -q
}

# Perf-regression gate: a fresh probe sweep must stay bit-identical and
# keep serial sim_cycles_per_sec within 20% of the committed baseline.
# (Refresh the baseline with `cargo run --release -p pact-bench --bin
# probe_sweep` and commit the new BENCH_sweep.json.)
stage_perf() {
    cargo run --release -p pact-bench --bin probe_sweep -- \
        --check-against BENCH_sweep.json
}

# Machine-loop perf-regression gate: one large many-threaded cell run
# serial (1 shard) and sharded (8 shards) must stay bit-identical, and
# the sharded sim_cycles_per_sec must stay within 20% of the committed
# baseline. (Refresh with `cargo run --release -p pact-bench --bin
# probe_machine` and commit the new BENCH_machine.json.)
stage_machine_perf() {
    cargo run --release -p pact-bench --bin probe_machine -- \
        --check-against BENCH_machine.json
}

stage_obs() {
    obs_dir="target/ci-obs"
    rm -rf "$obs_dir"
    mkdir -p "$obs_dir"
    cargo run --release -p pact-bench --bin tierctl -- trace \
        --workload gups --policy pact --seed 7 --validate \
        --out "$obs_dir/a.json"
    cargo run --release -p pact-bench --bin tierctl -- trace \
        --workload gups --policy pact --seed 7 --validate \
        --out "$obs_dir/b.json"
    cmp "$obs_dir/a.json" "$obs_dir/b.json"
    echo "    chrome traces byte-identical across identically-seeded runs"
}

# Criticality-attribution gate (DESIGN.md §13): `tierctl report` on a
# fault-injected cell must emit byte-identical artifacts across
# event-loop shard counts, and the metrics endpoint must answer
# /healthz and /metrics. Artifacts stay in target/ci-report for the
# workflow's upload step.
stage_obs_report() {
    report_dir="target/ci-report"
    rm -rf "$report_dir"
    fault_spec='drop=0.2,fail=0.6,retries=1,stall=slow:20000:0.5,seed=7'
    for shards in 1 4; do
        PACT_FAULTS="$fault_spec" PACT_SHARDS="$shards" \
            cargo run --release -p pact-bench --bin tierctl -- report \
            --workload gups --policy pact --ratio 1:2 --seed 7 \
            --out "$report_dir/shards$shards"
    done
    for f in report.md report.json flame.folded; do
        cmp "$report_dir/shards1/$f" "$report_dir/shards4/$f"
    done
    echo "    criticality report byte-identical across PACT_SHARDS={1,4}"
    if command -v curl > /dev/null 2>&1; then
        # Every accepted connection counts against --max-requests, so
        # readiness is detected from the server's "serving metrics"
        # line rather than by probing the port.
        cargo run --release -p pact-bench --bin tierctl -- serve-metrics \
            --workload gups --seed 7 --addr 127.0.0.1:19464 --max-requests 2 \
            > "$report_dir/serve.out" &
        serve_pid=$!
        for _ in $(seq 1 150); do
            grep -q 'serving metrics' "$report_dir/serve.out" 2> /dev/null && break
            sleep 0.2
        done
        curl -fsS http://127.0.0.1:19464/healthz | grep -q ok
        curl -fsS http://127.0.0.1:19464/metrics | grep -q '^pact_total_cycles'
        wait "$serve_pid"
        echo "    /healthz and /metrics answered over HTTP"
    else
        cargo run --release -p pact-bench --bin tierctl -- serve-metrics \
            --workload gups --seed 7 --self-check
        echo "    serve-metrics self-check passed (curl unavailable)"
    fi
}

stage_fault() {
    obs_dir="target/ci-obs"
    mkdir -p "$obs_dir"
    fault_spec='drop=0.2,fail=0.6,retries=1,stall=slow:20000:0.5,seed=7'
    PACT_FAULTS="$fault_spec" cargo run --release -p pact-bench --bin tierctl -- trace \
        --workload gups --policy pact --ratio 1:2 --seed 7 --validate \
        --out "$obs_dir/fault_a.json" | tee "$obs_dir/fault_a.out"
    PACT_FAULTS="$fault_spec" cargo run --release -p pact-bench --bin tierctl -- trace \
        --workload gups --policy pact --ratio 1:2 --seed 7 --validate \
        --out "$obs_dir/fault_b.json" > /dev/null
    cmp "$obs_dir/fault_a.json" "$obs_dir/fault_b.json"
    grep -q 'failed_promotions=0 dropped_orders=0' "$obs_dir/fault_a.out" && {
        echo "    FAIL: injected faults produced no failed/dropped orders"
        exit 1
    }
    grep -q 'failed_promotions=' "$obs_dir/fault_a.out"
    echo "    fault-injected traces byte-identical, nonzero failure totals"
}

# Crash-recovery gate (DESIGN.md §14): capture a fault-injected cell
# with the retry/backoff machinery loaded, snapshotting under 1 shard;
# resume every frame under PACT_SHARDS=4 and 7 and demand the
# report:/digest: summary lines match the uninterrupted run's exactly.
# A deliberately corrupted frame must be rejected with exit 2, and the
# same fault plan must be set on resume — the plan is part of the
# configuration fingerprint.
stage_snapshot() {
    snap_dir="target/ci-snap"
    rm -rf "$snap_dir"
    mkdir -p "$snap_dir"
    fault_spec='drop=0.2,fail=0.6,retries=2,backoff=2,seed=7'
    PACT_FAULTS="$fault_spec" PACT_SHARDS=1 \
        cargo run --release -p pact-bench --bin tierctl -- snapshot \
        --workload masim --policy pact --ratio 1:2 --seed 7 --every 8 \
        --out "$snap_dir" | tee "$snap_dir/capture.out"
    grep -E '^(report|digest):' "$snap_dir/capture.out" > "$snap_dir/want.txt"
    frames=0
    for snap in "$snap_dir"/snap_*.pactsnap; do
        for shards in 4 7; do
            PACT_FAULTS="$fault_spec" PACT_SHARDS="$shards" \
                cargo run --release -p pact-bench --bin tierctl -- resume \
                --from "$snap" | grep -E '^(report|digest):' > "$snap_dir/got.txt"
            cmp "$snap_dir/want.txt" "$snap_dir/got.txt"
        done
        frames=$((frames + 1))
    done
    [ "$frames" -gt 0 ] || {
        echo "    FAIL: capture run wrote no snapshots"
        exit 1
    }
    echo "    kill-resume byte-identical across PACT_SHARDS={4,7} for $frames frames"
    first=$(ls "$snap_dir"/snap_*.pactsnap | head -n 1)
    cp "$first" "$snap_dir/corrupt.pactsnap"
    printf '\377' | dd of="$snap_dir/corrupt.pactsnap" bs=1 seek=100 count=1 conv=notrunc 2> /dev/null
    rc=0
    PACT_FAULTS="$fault_spec" cargo run --release -p pact-bench --bin tierctl -- resume \
        --from "$snap_dir/corrupt.pactsnap" > /dev/null 2>&1 || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "    FAIL: corrupted snapshot exited $rc, want 2"
        exit 1
    }
    rc=0
    cargo run --release -p pact-bench --bin tierctl -- resume \
        --from "$first" > /dev/null 2>&1 || rc=$?
    [ "$rc" -eq 2 ] || {
        echo "    FAIL: resume without the capture's fault plan exited $rc, want 2"
        exit 1
    }
    echo "    corrupted and configuration-mismatched snapshots rejected with exit 2"
}

# Invariant & differential-oracle smoke: the config fuzzer with the
# runtime checker armed, per-cell differential oracles, and the
# sweep-level bit-identity oracle.
stage_check() {
    cargo run --release -p pact-bench --bin tierctl -- check \
        --fuzz 60 --seed 1 --oracle
    cargo run --release -p pact-bench --bin check_sweep
}

# Fleet gate (DESIGN.md §15): the three-tenant noisy-neighbor cell
# (PACT app + mlc-hog antagonist + zipf-drift store) under migration
# admission control must print byte-identical output across event-loop
# shard counts and job-pool widths, and the admission controller must
# actually reject something — a fleet run with zero rejections is not
# exercising backpressure. Artifacts stay in target/ci-fleet for the
# workflow's upload step.
stage_fleet() {
    fleet_dir="target/ci-fleet"
    rm -rf "$fleet_dir"
    mkdir -p "$fleet_dir"
    for shards in 1 4; do
        for jobs in 2 4; do
            PACT_SHARDS="$shards" PACT_JOBS="$jobs" \
                cargo run --release -p pact-bench --bin tierctl -- fleet \
                --seed 7 > "$fleet_dir/s${shards}j${jobs}.txt"
        done
    done
    for f in s1j4 s4j2 s4j4; do
        cmp "$fleet_dir/s1j2.txt" "$fleet_dir/$f.txt"
    done
    grep -q '^admission: admitted=' "$fleet_dir/s1j2.txt"
    grep -q 'rejected=0$' "$fleet_dir/s1j2.txt" && {
        echo "    FAIL: fleet cell never rejected a migration order"
        exit 1
    }
    echo "    fleet byte-identical across PACT_SHARDS={1,4} x PACT_JOBS={2,4}, nonzero rejections"
}

# Fleet perf-regression gate: the probe's serial and sharded runs must
# stay bit-identical with nonzero rejections, and the sharded
# sim_cycles_per_sec must stay within 20% of the committed baseline.
# (Refresh with `cargo run --release -p pact-bench --bin probe_fleet`
# and commit the new BENCH_fleet.json.)
stage_fleet_perf() {
    cargo run --release -p pact-bench --bin probe_fleet -- \
        --check-against BENCH_fleet.json
}

# --- driver ----------------------------------------------------------

wants() {
    case " $STAGES " in
    *" $1 "*) return 0 ;;
    *) return 1 ;;
    esac
}

run_stage() {
    if ! wants "$1"; then
        echo "==> $1 (skipped: not in PACT_CI_STAGES)"
        return 0
    fi
    echo "==> $1"
    stage_start=$(date +%s)
    # POSIX function names cannot contain dashes; stage names can.
    "stage_$(echo "$1" | tr '-' '_')"
    elapsed=$(($(date +%s) - stage_start))
    printf '%-12s %4ss\n' "$1" "$elapsed" >> "$TIMING_FILE"
    # Soft slowdown warning against the last persisted run: never fails
    # the build (runner load varies), but makes creeping stage cost
    # visible in the log.
    prev=$(awk -v s="$1" '$1 == s { t = $2; sub(/s$/, "", t); print t; exit }' \
        "$PREV_TIMINGS" 2> /dev/null || true)
    if [ -n "${prev:-}" ] && [ "$prev" -gt 0 ] && [ "$elapsed" -gt $((prev * 3 / 2)) ]; then
        echo "    warning: stage $1 took ${elapsed}s, >50% over recorded ${prev}s"
    fi
}

for stage in $ROSTER; do
    run_stage "$stage"
done

echo "==> stage wall times"
cat "$TIMING_FILE"
# Persist the table for the next run's slowdown warnings and the
# workflow's artifact upload; stages skipped this run carry forward
# their previously recorded times.
mkdir -p target
cp "$TIMING_FILE" "$TIMINGS_PATH.tmp"
while IFS= read -r line; do
    name=${line%% *}
    grep -q "^$name " "$TIMING_FILE" || echo "$line" >> "$TIMINGS_PATH.tmp"
done < "$PREV_TIMINGS"
mv "$TIMINGS_PATH.tmp" "$TIMINGS_PATH"
echo "CI OK"
