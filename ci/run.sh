#!/usr/bin/env sh
# Offline CI gate: format, lint, build, and the tier-1 test suite.
#
# The workspace is fully hermetic — `rand`, `proptest`, and `criterion`
# are replaced by in-repo implementations (crates/stats/src/rng.rs and
# vendor/) — so this script must pass with no network access:
#
#     CARGO_NET_OFFLINE=true ci/run.sh
#
# PACT_JOBS is pinned so sweep-shaped tests exercise the parallel
# executor deterministically regardless of the runner's core count.
set -eu

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"
export PACT_JOBS="${PACT_JOBS:-4}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> sweep perf probe (records BENCH_sweep.json)"
cargo run --release -p pact-bench --bin probe_sweep

echo "==> obs smoke: traced run validates and is seed-reproducible"
obs_dir="target/ci-obs"
rm -rf "$obs_dir"
mkdir -p "$obs_dir"
cargo run --release -p pact-bench --bin tierctl -- trace \
    --workload gups --policy pact --seed 7 --validate \
    --out "$obs_dir/a.json"
cargo run --release -p pact-bench --bin tierctl -- trace \
    --workload gups --policy pact --seed 7 --validate \
    --out "$obs_dir/b.json"
cmp "$obs_dir/a.json" "$obs_dir/b.json"
echo "    chrome traces byte-identical across identically-seeded runs"

echo "==> fault smoke: injected run completes, validates, reports failures"
fault_spec='drop=0.2,fail=0.6,retries=1,stall=slow:20000:0.5,seed=7'
PACT_FAULTS="$fault_spec" cargo run --release -p pact-bench --bin tierctl -- trace \
    --workload gups --policy pact --ratio 1:2 --seed 7 --validate \
    --out "$obs_dir/fault_a.json" | tee "$obs_dir/fault_a.out"
PACT_FAULTS="$fault_spec" cargo run --release -p pact-bench --bin tierctl -- trace \
    --workload gups --policy pact --ratio 1:2 --seed 7 --validate \
    --out "$obs_dir/fault_b.json" > /dev/null
cmp "$obs_dir/fault_a.json" "$obs_dir/fault_b.json"
grep -q 'failed_promotions=0 dropped_orders=0' "$obs_dir/fault_a.out" && {
    echo "    FAIL: injected faults produced no failed/dropped orders"
    exit 1
}
grep -q 'failed_promotions=' "$obs_dir/fault_a.out"
echo "    fault-injected traces byte-identical, nonzero failure totals"

echo "CI OK"
